"""Content-addressed artifact cache for the execution runtime.

Sweeps across (backend, app, graph) cells recompute the same expensive
artifacts over and over: generated proxy graphs, ON1 occurrence-rank
permutations, and whole :class:`~repro.runtime.spec.JobResult`\\ s.  This
module memoizes all three behind one interface:

* every artifact is addressed by a **stable content hash** of the fields
  that determine it (:func:`stable_hash` — canonical JSON, SHA-256), never
  by object identity or insertion order;
* values live in an **in-process LRU** first and a **disk store** second
  (``~/.cache/gramer-repro/<kind>/<hash>.pkl`` by default, overridable via
  the ``GRAMER_CACHE_DIR`` environment variable), so repeated calls inside
  one process are free and repeated runs across processes — including
  :class:`~repro.runtime.executor.Executor` pool workers — skip
  regeneration entirely;
* disk failures are never fatal: the cache degrades to recomputing.

Integrity (docs/resilience.md): every disk entry is an **envelope** —
``{"cache_version", "sha256", "payload"}`` where ``payload`` is the
pickled value and ``sha256`` its content checksum — and the checksum is
verified on every read.  An entry that is truncated, bit-flipped, or
written by a different ``CACHE_VERSION`` is **quarantined**: moved to
``<root>/quarantine/`` for post-mortem, counted in
:attr:`CacheStats.quarantined`, and reported as a miss so the artifact is
recomputed.  Corruption can therefore never surface as an exception *or*
as silently wrong data.

Values are serialized with :mod:`pickle`; the disk store is a private
memo, not an interchange format.  Keys must be built from JSON-canonical
scalars/containers so the hash is stable across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from .atomicio import atomic_write_bytes

__all__ = [
    "CACHE_VERSION",
    "JOB_KIND",
    "ArtifactCache",
    "CacheStats",
    "default_cache",
    "default_cache_root",
    "reset_default_cache",
    "stable_hash",
]

# Bump to invalidate every stored artifact when serialized layouts change.
# v2: checksummed envelope entries + JobResult.retries field.
CACHE_VERSION = 2

#: Cache kind under which completed ``JobResult`` artifacts live — shared
#: by the executor (store/lookup), the distributed sweep workers, and the
#: manifest sealer/verifier, which all address the same entries.
JOB_KIND = "job"

_ENV_CACHE_DIR = "GRAMER_CACHE_DIR"
_DEFAULT_ROOT = Path("~/.cache/gramer-repro")
_QUARANTINE_DIR = "quarantine"

# Exceptions that mark an unreadable/undecodable entry (as opposed to an
# OSError reaching the file at all).
_DECODE_ERRORS = (
    pickle.PickleError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    ValueError,
)


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (set, frozenset)):
        return sorted(str(item) for item in obj)
    # numpy scalars and other number-likes.
    if hasattr(obj, "item") and callable(obj.item):
        return _canonical(obj.item())
    raise TypeError(
        f"cache keys must be JSON-canonical; got {type(obj).__name__}"
    )


def stable_hash(obj: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_root() -> Path:
    """Resolve the disk root: ``$GRAMER_CACHE_DIR`` or ``~/.cache/gramer-repro``."""
    # gramer: ignore[GRM201] -- process-startup config: picks where the
    # cache lives, never what any cached value contains.
    env = os.environ.get(_ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return _DEFAULT_ROOT.expanduser()


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier (diagnostics and tests).

    ``quarantined`` counts disk entries that failed integrity
    verification (bad checksum, truncation, version skew) and were moved
    to ``<root>/quarantine/``; each also counts as a miss, never as an
    error surfaced to the caller.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_errors: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "disk_errors": self.disk_errors,
            "quarantined": self.quarantined,
        }


def _encode_entry(value: Any) -> bytes:
    """Wrap ``value`` in the checksummed on-disk envelope."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "cache_version": CACHE_VERSION,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload": payload,
    }
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


class _IntegrityError(Exception):
    """Internal: entry failed envelope/checksum verification."""


def _verify_envelope(data: bytes) -> tuple[str, bytes]:
    """Validate one on-disk envelope; return ``(sha256, payload)``.

    Checks the envelope shape, the cache version, and the payload
    checksum — everything short of unpickling the payload itself, so
    integrity audits (manifest verification, resume validation) can run
    without paying deserialization.
    """
    try:
        envelope = pickle.loads(data)
    except _DECODE_ERRORS as exc:
        raise _IntegrityError(f"undecodable envelope: {exc}") from exc
    if not isinstance(envelope, dict) or "payload" not in envelope:
        raise _IntegrityError("not an envelope (version skew?)")
    if envelope.get("cache_version") != CACHE_VERSION:
        raise _IntegrityError(
            f"cache version skew: entry v{envelope.get('cache_version')!r} "
            f"vs runtime v{CACHE_VERSION}"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, bytes):
        raise _IntegrityError("envelope payload is not bytes")
    sha = hashlib.sha256(payload).hexdigest()
    if sha != envelope.get("sha256"):
        raise _IntegrityError("payload checksum mismatch")
    return sha, payload


def _decode_entry(data: bytes) -> Any:
    """Verify and unwrap one on-disk envelope; raise on any defect."""
    _, payload = _verify_envelope(data)
    try:
        return pickle.loads(payload)
    except _DECODE_ERRORS as exc:
        raise _IntegrityError(f"undecodable payload: {exc}") from exc


@dataclass
class ArtifactCache:
    """Two-tier (LRU memory + pickle disk) content-addressed store.

    ``use_disk=False`` keeps the cache purely in-process (used by
    ``--no-cache`` flows that still want per-run memoization).
    """

    root: Path = field(default_factory=default_cache_root)
    memory_items: int = 128
    use_disk: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()

    # -- key/path plumbing --------------------------------------------------

    def digest(self, key: Any) -> str:
        """Content address of ``key`` (version-salted stable hash)."""
        return stable_hash({"key": key, "version": CACHE_VERSION})

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    def entry_path(self, kind: str, key: Any) -> Path:
        """Disk location of ``(kind, key)`` (whether or not it exists)."""
        return self._path(kind, self.digest(key))

    def _remember(self, slot: tuple[str, str], value: Any) -> None:
        self._memory[slot] = value
        self._memory.move_to_end(slot)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    def _quarantine(self, kind: str, digest: str, path: Path) -> None:
        """Move a failed-verification entry aside and count it."""
        self.stats.quarantined += 1
        target = self.root / _QUARANTINE_DIR / f"{kind}-{digest}.pkl"
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Out of moves too?  Best effort: drop the bad entry so the
            # recomputed value can take its slot.
            try:
                path.unlink(missing_ok=True)
            except OSError:
                self.stats.disk_errors += 1

    # -- public API ---------------------------------------------------------

    def lookup(self, kind: str, key: Any) -> tuple[bool, Any]:
        """Return ``(hit, value)`` without computing anything.

        Disk entries are checksum-verified before deserialization; a
        corrupt, truncated, or version-skewed entry is quarantined and
        reported as a miss — never an exception, never garbage data.
        """
        digest = self.digest(key)
        slot = (kind, digest)
        if slot in self._memory:
            self._memory.move_to_end(slot)
            self.stats.memory_hits += 1
            return True, self._memory[slot]
        if self.use_disk:
            path = self._path(kind, digest)
            try:
                data = path.read_bytes() if path.exists() else None
            except OSError:
                self.stats.disk_errors += 1
                data = None
            if data is not None:
                try:
                    value = _decode_entry(data)
                except _IntegrityError:
                    self._quarantine(kind, digest, path)
                else:
                    self.stats.disk_hits += 1
                    self._remember(slot, value)
                    return True, value
        self.stats.misses += 1
        return False, None

    def store(self, kind: str, key: Any, value: Any) -> None:
        """Remember ``value`` in memory and (best-effort) on disk."""
        digest = self.digest(key)
        self._remember((kind, digest), value)
        if not self.use_disk:
            return
        try:
            # Publish through the blessed tmp+fsync+rename helper: entries
            # land whole or not at all under concurrent sweep workers.
            atomic_write_bytes(self._path(kind, digest), _encode_entry(value))
        except OSError:
            self.stats.disk_errors += 1

    def entry_checksum(self, kind: str, key: Any) -> str | None:
        """Verify ``(kind, key)``'s disk entry; return its payload sha256.

        This is the integrity primitive behind manifest sealing and
        verification and ``--resume`` artifact validation: it reads the
        envelope straight from disk (never the memory tier), checks the
        version and payload checksum, and returns the content hash —
        *without* unpickling the payload.  A missing entry returns
        ``None``; a corrupt or version-skewed one is quarantined (same
        path as :meth:`lookup`) and also returns ``None``.
        """
        if not self.use_disk:
            return None
        digest = self.digest(key)
        path = self._path(kind, digest)
        try:
            data = path.read_bytes() if path.exists() else None
        except OSError:
            self.stats.disk_errors += 1
            return None
        if data is None:
            return None
        try:
            sha, _ = _verify_envelope(data)
        except _IntegrityError:
            self._quarantine(kind, digest, path)
            self._memory.pop((kind, digest), None)
            return None
        return sha

    def get_or_create(
        self, kind: str, key: Any, producer: Callable[[], Any]
    ) -> Any:
        """Memoized ``producer()`` keyed by ``(kind, stable_hash(key))``."""
        hit, value = self.lookup(kind, key)
        if hit:
            return value
        value = producer()
        self.store(kind, key, value)
        return value

    def evict_memory(self, kind: str, key: Any) -> None:
        """Drop one entry from the in-process tier (disk is untouched)."""
        self._memory.pop((kind, self.digest(key)), None)

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive)."""
        self._memory.clear()


_default: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """The process-wide cache singleton (created lazily from the env)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def reset_default_cache() -> None:
    """Forget the singleton (tests re-point ``GRAMER_CACHE_DIR``)."""
    global _default
    _default = None
