"""Content-addressed artifact cache for the execution runtime.

Sweeps across (backend, app, graph) cells recompute the same expensive
artifacts over and over: generated proxy graphs, ON1 occurrence-rank
permutations, and whole :class:`~repro.runtime.spec.JobResult`\\ s.  This
module memoizes all three behind one interface:

* every artifact is addressed by a **stable content hash** of the fields
  that determine it (:func:`stable_hash` — canonical JSON, SHA-256), never
  by object identity or insertion order;
* values live in an **in-process LRU** first and a **disk store** second
  (``~/.cache/gramer-repro/<kind>/<hash>.pkl`` by default, overridable via
  the ``GRAMER_CACHE_DIR`` environment variable), so repeated calls inside
  one process are free and repeated runs across processes — including
  :class:`~repro.runtime.executor.Executor` pool workers — skip
  regeneration entirely;
* disk failures (read-only filesystem, corrupt entry, version skew) are
  never fatal: the cache silently degrades to recomputing.

Values are serialized with :mod:`pickle`; the disk store is a private
memo, not an interchange format.  Keys must be built from JSON-canonical
scalars/containers so the hash is stable across processes and sessions.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "default_cache",
    "default_cache_root",
    "reset_default_cache",
    "stable_hash",
]

# Bump to invalidate every stored artifact when serialized layouts change.
CACHE_VERSION = 1

_ENV_CACHE_DIR = "GRAMER_CACHE_DIR"
_DEFAULT_ROOT = Path("~/.cache/gramer-repro")


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (set, frozenset)):
        return sorted(str(item) for item in obj)
    # numpy scalars and other number-likes.
    if hasattr(obj, "item") and callable(obj.item):
        return _canonical(obj.item())
    raise TypeError(
        f"cache keys must be JSON-canonical; got {type(obj).__name__}"
    )


def stable_hash(obj: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``obj``."""
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_root() -> Path:
    """Resolve the disk root: ``$GRAMER_CACHE_DIR`` or ``~/.cache/gramer-repro``."""
    # gramer: ignore[GRM201] -- process-startup config: picks where the
    # cache lives, never what any cached value contains.
    env = os.environ.get(_ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return _DEFAULT_ROOT.expanduser()


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier (diagnostics and tests)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "disk_errors": self.disk_errors,
        }


@dataclass
class ArtifactCache:
    """Two-tier (LRU memory + pickle disk) content-addressed store.

    ``use_disk=False`` keeps the cache purely in-process (used by
    ``--no-cache`` flows that still want per-run memoization).
    """

    root: Path = field(default_factory=default_cache_root)
    memory_items: int = 128
    use_disk: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._memory: OrderedDict[tuple[str, str], Any] = OrderedDict()

    # -- key/path plumbing --------------------------------------------------

    def digest(self, key: Any) -> str:
        """Content address of ``key`` (version-salted stable hash)."""
        return stable_hash({"key": key, "version": CACHE_VERSION})

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}.pkl"

    def _remember(self, slot: tuple[str, str], value: Any) -> None:
        self._memory[slot] = value
        self._memory.move_to_end(slot)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    # -- public API ---------------------------------------------------------

    def lookup(self, kind: str, key: Any) -> tuple[bool, Any]:
        """Return ``(hit, value)`` without computing anything."""
        digest = self.digest(key)
        slot = (kind, digest)
        if slot in self._memory:
            self._memory.move_to_end(slot)
            self.stats.memory_hits += 1
            return True, self._memory[slot]
        if self.use_disk:
            path = self._path(kind, digest)
            try:
                if path.exists():
                    with open(path, "rb") as handle:
                        value = pickle.load(handle)
                    self.stats.disk_hits += 1
                    self._remember(slot, value)
                    return True, value
            except (OSError, pickle.PickleError, EOFError, AttributeError):
                self.stats.disk_errors += 1
        self.stats.misses += 1
        return False, None

    def store(self, kind: str, key: Any, value: Any) -> None:
        """Remember ``value`` in memory and (best-effort) on disk."""
        digest = self.digest(key)
        self._remember((kind, digest), value)
        if not self.use_disk:
            return
        path = self._path(kind, digest)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic under concurrent pool workers
        except OSError:
            self.stats.disk_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def get_or_create(
        self, kind: str, key: Any, producer: Callable[[], Any]
    ) -> Any:
        """Memoized ``producer()`` keyed by ``(kind, stable_hash(key))``."""
        hit, value = self.lookup(kind, key)
        if hit:
            return value
        value = producer()
        self.store(kind, key, value)
        return value

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive)."""
        self._memory.clear()


_default: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """The process-wide cache singleton (created lazily from the env)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def reset_default_cache() -> None:
    """Forget the singleton (tests re-point ``GRAMER_CACHE_DIR``)."""
    global _default
    _default = None
