"""Execution backends: one ``Backend.run(JobSpec) -> JobResult`` interface.

Each of the repository's four execution vehicles — exact software mining
(:func:`repro.mining.engine.run_dfs`), the GRAMER cycle simulator, and the
Fractal/RStream baseline models — is wrapped as a backend and registered by
name, so every consumer (the experiment harness, ``run_all``, the CLI's
``sweep``) resolves work through one registry instead of constructing
simulators and models inline.

The cell semantics (fixed overheads, energy accounting, scaled CPU
configurations) moved here verbatim from ``experiments.harness`` — results
are bit-identical to the pre-runtime serial path; the harness now re-exports
these helpers and builds :class:`~repro.runtime.spec.JobSpec`\\ s.

Graphs are addressed through the content-addressed
:class:`~repro.graph.store.GraphStore`: :func:`resolve_graph` opens
memory-mapped artifacts (registry proxies via the dataset registry,
edge-list files via :meth:`GraphStore.import_edge_list`), the executor
primes workers with store digests (:func:`prime_graph_digest`) so warm
workers attach to already-materialized artifacts through the page cache,
and ON1 rank permutations are content-addressed by the same digest
(:func:`cached_vertex_rank`) — computed once ever per graph, never
re-hashed per job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.accel.config import GramerConfig
from repro.accel.energy import EnergyParams, cpu_energy, gramer_energy
from repro.accel.sim import (
    DEFAULT_ENGINE,
    ENGINES,
    AncestorBufferOverflowError,
    SimResult,
    make_simulator,
)
from repro.obs.log import get_logger
from repro.baselines.cpu import CPUConfig
from repro.baselines.fractal import BaselineResult, FractalModel
from repro.baselines.rstream import RStreamModel
from repro.graph.csr import CSRGraph
from repro.graph.reorder import rank_permutation
from repro.graph.store import GraphArtifactError, default_graph_store
from repro.locality.occurrence import occurrence_numbers
from repro.mining.apps import make_app
from repro.mining.apps.base import Application
from repro.mining.engine import run_dfs

from .cache import default_cache
from .spec import JobResult, JobSpec

if TYPE_CHECKING:
    from repro.obs.access import AccessTrace
    from repro.obs.hooks import SimInstrument

_log = get_logger("runtime.backends")

__all__ = [
    "Backend",
    "SystemOverheads",
    "SCALE_OVERHEADS",
    "experiment_config",
    "build_app",
    "resolve_graph",
    "graph_digest_for",
    "prime_graph_digest",
    "cached_vertex_rank",
    "register_backend",
    "get_backend",
    "backend_names",
    "GramerBackend",
    "FractalBackend",
    "RStreamBackend",
    "SoftwareBackend",
]


@dataclass(frozen=True)
class SystemOverheads:
    """Fixed per-run costs, scaled with the proxy preset.

    The paper's Table III timing includes each system's fixed costs:
    GRAMER's "FPGA setup time and data transfer overheads between CPU and
    FPGA", Fractal's multi-thread task management (Spark setup excluded),
    and RStream's stream/table initialisation.  The absolute values below
    are scaled to the proxies so the *ratios* between fixed costs and
    mining work match the paper's regime (e.g. Citeseer: GRAMER 9.9 ms vs
    Fractal 150 ms vs RStream 11 ms — overhead-dominated on all three).
    """

    gramer_setup_s: float
    fractal_task_s: float
    rstream_startup_s: float
    pcie_bandwidth_bytes_per_s: float = 12e9  # PCIe gen3 x16 effective


SCALE_OVERHEADS: dict[str, SystemOverheads] = {
    "tiny": SystemOverheads(1.0e-4, 1.5e-3, 1.2e-4),
    "small": SystemOverheads(3.0e-4, 4.5e-3, 3.5e-4),
    "full": SystemOverheads(1.0e-3, 1.5e-2, 1.1e-3),
}


def experiment_config(**overrides: Any) -> GramerConfig:
    """The default accelerator configuration for all experiments."""
    from repro.experiments import datasets

    base: dict[str, Any] = dict(onchip_entries=datasets.EXPERIMENT_ONCHIP_ENTRIES)
    base.update(overrides)
    return GramerConfig(**base)


def build_app(app_name: str, graph_name: str, scale: str) -> Application:
    """Instantiate a Table III application variant for one dataset."""
    from repro.experiments import datasets

    if app_name.upper().startswith("FSM"):
        threshold = datasets.fsm_threshold(graph_name, scale)
        return make_app(f"FSM-{threshold}")
    return make_app(app_name)


def _make_app_for(spec: JobSpec) -> Application:
    if spec.dataset is not None:
        return build_app(spec.app, spec.dataset, spec.scale)
    # Edge-list jobs must spell out FSM thresholds ("FSM-100"); there is no
    # dataset registry entry to scale one from.
    return make_app(spec.app)


#: Digests primed by the executor before a worker runs a spec: the worker
#: attaches straight to the already-materialized artifact (page-cache warm)
#: instead of re-resolving its source.  Keyed by the frozen ``JobSpec``.
_PRIMED_GRAPH_DIGESTS: dict[JobSpec, str] = {}


def prime_graph_digest(spec: JobSpec, digest: str | None) -> None:
    """Pre-bind ``spec`` to a store digest (``None`` clears the binding)."""
    if digest is None:
        _PRIMED_GRAPH_DIGESTS.pop(spec, None)
    else:
        _PRIMED_GRAPH_DIGESTS[spec] = digest


def resolve_graph(spec: JobSpec, needs_labels: bool) -> CSRGraph:
    """Open the spec's graph, memory-mapped from the graph store.

    Every route lands on a store artifact: a digest primed by the
    executor is opened directly; an edge-list file is imported (parsed at
    most once per file content); a registry proxy goes through the
    store-materialized dataset registry.  A primed digest whose artifact
    has gone missing or corrupt degrades to re-resolving the source — the
    store quarantines the bad artifact and the graph is rebuilt.
    """
    store = default_graph_store()
    primed = _PRIMED_GRAPH_DIGESTS.get(spec)
    if primed is not None:
        try:
            return store.open(primed)
        except GraphArtifactError as exc:
            _log.warning(
                "primed graph artifact unavailable (%s); re-resolving %s",
                exc,
                spec.label(),
            )
    if spec.graph_path is not None:
        return store.open(store.import_edge_list(spec.graph_path))
    from repro.experiments import datasets

    if needs_labels:
        return datasets.load_labeled(spec.dataset, spec.scale)
    return datasets.load(spec.dataset, spec.scale)


def graph_digest_for(spec: JobSpec) -> str:
    """Materialize the spec's graph in the store; return its digest.

    The executor calls this in the parent before fanning a sweep out, so
    pool workers inherit warm artifacts (and the FSM threshold probe runs
    once, not once per worker).  Store-backed graphs carry their digest
    from the artifact header, so this never re-hashes arrays.
    """
    app = _make_app_for(spec)
    return resolve_graph(spec, app.needs_labels).content_digest()


def _graph_signature(graph: CSRGraph) -> str:
    # The store digest *is* the old array hash (SHA-256 over
    # offsets/neighbors/labels bytes), memoized on the graph — existing
    # on-disk ON1-rank entries stay addressable, with zero re-hashing.
    return graph.content_digest()


def cached_vertex_rank(graph: CSRGraph) -> np.ndarray:
    """ON1 rank permutation, content-addressed by the graph digest."""
    key = {"graph": _graph_signature(graph), "hops": 1}
    return default_cache().get_or_create(
        "on1_rank",
        key,
        lambda: rank_permutation(occurrence_numbers(graph, hops=1)),
    )


def _overheads(scale: str) -> SystemOverheads:
    try:
        return SCALE_OVERHEADS[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALE_OVERHEADS)}"
        ) from None


@runtime_checkable
class Backend(Protocol):
    """One way of executing a mining job."""

    name: str

    def run(self, spec: JobSpec) -> JobResult:  # pragma: no cover - protocol
        ...


class GramerBackend:
    """The GRAMER cycle-level simulator (`accel.sim`)."""

    name = "gramer"
    system = "GRAMER"

    def run(self, spec: JobSpec) -> JobResult:
        return self._execute(spec, None)

    def run_instrumented(
        self, spec: JobSpec, instrument: "SimInstrument"
    ) -> JobResult:
        """Run with observability hooks attached to the simulator.

        Hooks are purely observational, so the returned ``JobResult`` is
        identical (bar wall time) to an uninstrumented run — asserted by
        the zero-perturbation tests.
        """
        return self._execute(spec, instrument)

    def run_traced(
        self, spec: JobSpec, access_trace: "AccessTrace"
    ) -> JobResult:
        """Run with the memory-access event channel attached.

        Same zero-perturbation contract as ``run_instrumented``: the
        trace only accumulates events, so the ``JobResult`` is identical
        (bar wall time) to an untraced run.
        """
        return self._execute(spec, None, access_trace)

    def _execute(
        self,
        spec: JobSpec,
        instrument: "SimInstrument | None",
        access_trace: "AccessTrace | None" = None,
    ) -> JobResult:
        params = spec.params_dict()
        engine = str(params.get("engine", DEFAULT_ENGINE))
        if engine not in ENGINES:
            # Validate before any graph loading/app construction: a typo'd
            # engine used to surface as a late factory error after the
            # (possibly expensive) dataset was already resolved.
            raise ValueError(
                f"unknown engine {engine!r} for backend {self.name!r}; "
                f"expected one of {ENGINES}"
            )
        app = _make_app_for(spec)
        graph = resolve_graph(spec, app.needs_labels)
        cfg = experiment_config(**spec.config_dict())
        energy_overrides = {
            key[len("energy_"):]: value
            for key, value in params.items()
            if key.startswith("energy_")
        }
        energy_params = EnergyParams(**energy_overrides) if energy_overrides else None
        overheads = _overheads(spec.scale)
        if params.get("use_on1_ranks", True):
            vertex_rank = cached_vertex_rank(graph)
        else:
            vertex_rank = None

        def simulate(selected_engine: str) -> SimResult:
            # Engine selection rides in params; instrumented and
            # access-traced runs are forced to the reference engine by
            # the factory (obs hooks observe per-event state the fast
            # engine does not materialise).
            return make_simulator(
                graph,
                cfg,
                engine=selected_engine,
                vertex_rank=vertex_rank,
                use_on1_ranks=params.get("use_on1_ranks", True),
                instrument=instrument,
                access_trace=access_trace,
            ).run(app)

        start = time.perf_counter()
        try:
            result: SimResult = simulate(engine)
        except AncestorBufferOverflowError:
            # A model-level outcome, identical in both engines — part of
            # the cell's deterministic result, never an engine defect.
            raise
        except Exception as exc:
            if engine != "fast" or instrument is not None or access_trace is not None:
                # Only the fast engine may degrade to the reference: the
                # two are bit-identical when healthy, so substitution is
                # invisible.  Turbo results are tolerance-banded, not
                # byte-comparable — silently swapping in reference stats
                # would change the cell, so a turbo failure is a failure.
                raise
            # Graceful degradation (docs/resilience.md): a fast-engine
            # internal error gets one logged shot on the reference engine
            # before the job is declared failed.  Both engines are
            # bit-identical when healthy, so the result is unchanged.
            _log.warning(
                "fast engine failed (%s: %s); falling back to the "
                "reference engine for this job",
                type(exc).__name__,
                exc,
            )
            start = time.perf_counter()
            result = simulate("reference")
        wall = time.perf_counter() - start
        energy = gramer_energy(result.stats, cfg, energy_params)
        # Table III's GRAMER time "includes the FPGA setup time and data
        # transfer overheads between CPU and FPGA" (§VI-B).
        graph_bytes = (graph.num_vertices + 1 + len(graph.neighbors)) * 8
        fixed = overheads.gramer_setup_s + (
            graph_bytes / overheads.pcie_bandwidth_bytes_per_s
        )
        # The FPGA burns its static power through the setup/transfer period
        # too, and the paper's energy comparison spans the same total runtime
        # its Table III reports — charge it on the same basis.
        static_w = (energy_params or EnergyParams()).static_w
        total_energy_j = energy.total_j + static_w * fixed
        return JobResult(
            spec=spec,
            system=self.system,
            ok=True,
            seconds=result.seconds + fixed,
            energy_j=total_energy_j,
            wall_seconds=wall,
            detail={
                "cycles": result.cycles,
                "execution_seconds": result.seconds,
                "fixed_overhead_seconds": fixed,
                "vertex_hit_ratio": result.stats.vertex_hit_ratio,
                "edge_hit_ratio": result.stats.edge_hit_ratio,
                "steals": result.stats.steals,
                "embeddings": result.mining.embeddings_by_size,
                "summary": result.mining.summary,
            },
        )


def _scaled_cpu_config(spec: JobSpec) -> CPUConfig:
    from repro.experiments import datasets

    base = datasets.scaled_cpu_config(spec.scale)
    overrides = spec.config_dict()
    return replace(base, **overrides) if overrides else base


def _baseline_result(
    spec: JobSpec,
    system: str,
    model: FractalModel | RStreamModel,
    access_trace: "AccessTrace | None" = None,
) -> JobResult:
    app = _make_app_for(spec)
    graph = resolve_graph(spec, app.needs_labels)
    start = time.perf_counter()
    result: BaselineResult = model.run(graph, app, access_trace=access_trace)
    wall = time.perf_counter() - start
    seconds = result.seconds if result.available else None
    return JobResult(
        spec=spec,
        system=system,
        ok=True,
        seconds=seconds,
        energy_j=cpu_energy(seconds) if seconds is not None else None,
        wall_seconds=wall,
        detail={
            "failed": result.failed,
            "stalls": result.breakdown.stall_fractions(),
            "embeddings": result.mining.embeddings_by_size,
            "summary": result.mining.summary,
        },
    )


class FractalBackend:
    """The Fractal-model CPU DFS baseline."""

    name = "fractal"
    system = "Fractal"

    def _model(self, spec: JobSpec) -> FractalModel:
        params = spec.params_dict()
        return FractalModel(
            _scaled_cpu_config(spec),
            task_overhead_s=params.get(
                "task_overhead_s", _overheads(spec.scale).fractal_task_s
            ),
        )

    def run(self, spec: JobSpec) -> JobResult:
        return _baseline_result(spec, self.system, self._model(spec))

    def run_traced(
        self, spec: JobSpec, access_trace: "AccessTrace"
    ) -> JobResult:
        """Run with the post-L2 miss stream routed into ``access_trace``."""
        return _baseline_result(
            spec, self.system, self._model(spec), access_trace=access_trace
        )


class RStreamBackend:
    """The RStream-model out-of-core BFS baseline."""

    name = "rstream"
    system = "RStream"

    def _model(self, spec: JobSpec) -> RStreamModel:
        params = spec.params_dict()
        return RStreamModel(
            _scaled_cpu_config(spec),
            startup_overhead_s=params.get(
                "startup_overhead_s", _overheads(spec.scale).rstream_startup_s
            ),
            max_frontier=int(params.get("max_frontier", 2_000_000)),
        )

    def run(self, spec: JobSpec) -> JobResult:
        return _baseline_result(spec, self.system, self._model(spec))

    def run_traced(
        self, spec: JobSpec, access_trace: "AccessTrace"
    ) -> JobResult:
        """Run with miss + embedding-spill streams routed into the trace."""
        return _baseline_result(
            spec, self.system, self._model(spec), access_trace=access_trace
        )


class SoftwareBackend:
    """Exact software mining (`mining.engine.run_dfs`), no timing model.

    ``seconds`` is ``None`` — the software path measures host wall time,
    which is inherently nondeterministic and therefore lives only in
    ``wall_seconds``; ``detail`` carries the exact counts.
    """

    name = "software"
    system = "Software"

    def run(self, spec: JobSpec) -> JobResult:
        app = _make_app_for(spec)
        graph = resolve_graph(spec, app.needs_labels)
        start = time.perf_counter()
        run_dfs(graph, app)
        wall = time.perf_counter() - start
        mining = app.result()
        return JobResult(
            spec=spec,
            system=self.system,
            ok=True,
            seconds=None,
            energy_j=None,
            wall_seconds=wall,
            detail={
                "candidates_checked": app.candidates_checked,
                "embeddings": mining.embeddings_by_size,
                "patterns": mining.patterns_by_size,
                "summary": mining.summary,
            },
        )


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, override: bool = False) -> None:
    """Add a backend to the registry (``override`` to replace an entry)."""
    if not override and backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend


def get_backend(name: str) -> Backend:
    """Resolve a backend by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


for _backend in (GramerBackend(), FractalBackend(), RStreamBackend(), SoftwareBackend()):
    register_backend(_backend)
