"""Lease-based cell claims: how N sweep workers shard one grid.

The paper's PUs absorb load imbalance by stealing work from each other's
queues; one level up, independent ``gramer worker`` processes do the
same to a sweep grid, coordinated only through shared durable state — a
directory of **claim files** next to the run ledger.  No server, no
locks held across work, no assumption that any worker survives.

One claim file per :func:`~repro.runtime.ledger.spec_digest`, and three
atomic moves (all through :mod:`repro.runtime.atomicio` primitives):

* **acquire** — ``O_CREAT | O_EXCL`` create of ``<digest>.claim``.
  Exactly one of N racing workers wins; losers back off with
  deterministic seeded jitter (no thundering herd, no global RNG).
* **heartbeat** — the owner periodically rewrites its claim (tmp+rename)
  with a fresh ``refreshed_at``; the file's **mtime** is the lease
  clock, so expiry is judged by filesystem time, which every worker on
  a shared mount agrees on.
* **takeover** — a claim whose mtime is older than its lease TTL is a
  straggler's (hung, ``kill -9``'d, or partitioned).  A contender
  *renames* the expired file to a per-pid graveyard name — ``rename``
  succeeds for exactly one contender because the source vanishes — and
  the winner re-creates the claim with ``generation + 1``.  This is the
  work-stealing path: a dead worker's cells re-enter circulation after
  one lease TTL, and no two contenders ever both win.

An owner that was taken over (its heartbeat finds a different
worker/generation in the file) learns it **lost** the lease; its
in-flight computation is allowed to finish — results are deterministic,
so a duplicate is byte-identical — but the loss is reported so the
ledger can audit it.  In the steady state (no expiries) claims are
exclusive by construction and no cell is ever double-computed.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.log import get_logger

from .atomicio import atomic_write_text, exclusive_create_text

__all__ = [
    "CLAIMS_VERSION",
    "Claim",
    "ClaimStore",
    "claim_backoff_s",
]

CLAIMS_VERSION = 1

_log = get_logger("runtime.claims")

#: Claim files: ``<digest>.claim``; graveyard names for expired claims
#: that lost their takeover race: ``<digest>.g<generation>.dead.<pid>``.
_CLAIM_SUFFIX = ".claim"


def _now_s() -> float:
    # Wall clock, deliberately: lease timestamps are *coordination*
    # metadata compared against filesystem mtimes that other hosts set;
    # they never reach any cached value or result fingerprint.
    # gramer: ignore[GRM101] -- cross-process lease clock, never result
    # content; monotonic clocks are not comparable across hosts.
    return time.time()


def claim_backoff_s(
    token: str, attempt: int, base_s: float = 0.05, cap_s: float = 1.0
) -> float:
    """Deterministic bounded backoff for claim contention.

    Same construction as the retry policy's seeded jitter: the factor
    comes from ``sha256(token | attempt)``, not a global RNG, so two
    runs of the same worker id contend identically (and ``gramer
    check``'s GRM102 stays clean).  Exponential in ``attempt``, capped
    at ``cap_s`` so a long-held claim is re-checked at a bounded rate.
    """
    seed = hashlib.sha256(f"{token}|{attempt}".encode()).digest()
    jitter = 0.5 + seed[0] / 255.0  # [0.5, 1.5)
    return min(cap_s, base_s * (2 ** min(attempt - 1, 6))) * jitter


@dataclass(frozen=True)
class Claim:
    """One held lease: which worker owns which cell, at what generation.

    ``generation`` starts at 1 and increments on every takeover, so the
    ledger's claim audit can distinguish steady-state exclusivity
    (generation 1 everywhere) from straggler recovery.
    """

    digest: str
    label: str
    worker: str
    generation: int
    lease_s: float
    acquired_at: float

    def payload(self, refreshed_at: float) -> str:
        record: dict[str, Any] = {
            "claims_version": CLAIMS_VERSION,
            "digest": self.digest,
            "label": self.label,
            "worker": self.worker,
            "generation": self.generation,
            "lease_s": self.lease_s,
            "acquired_at": self.acquired_at,
            "refreshed_at": refreshed_at,
        }
        return json.dumps(record, sort_keys=True)


class ClaimStore:
    """Spec-digest-keyed claim files under one shared directory.

    All mutation goes through the three atomic moves described in the
    module docstring; readers tolerate every intermediate state (missing
    file, torn content readable as garbage, foreign owner).
    """

    def __init__(
        self, root: str | Path, worker: str, lease_s: float = 30.0
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.root = Path(root)
        self.worker = worker
        self.lease_s = lease_s

    # -- plumbing -----------------------------------------------------------

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{_CLAIM_SUFFIX}"

    def _read(self, path: Path) -> dict[str, Any] | None:
        """Best-effort parse of a claim file; ``None`` if unreadable."""
        try:
            text = path.read_text(encoding="utf-8")
            record = json.loads(text)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def _expired(self, path: Path) -> bool:
        """Lease judgment by mtime: filesystem time is the shared clock."""
        try:
            age_s = _now_s() - path.stat().st_mtime
        except OSError:
            return False  # vanished: someone released or took over
        return age_s > self.lease_s

    # -- the three atomic moves ---------------------------------------------

    def try_acquire(self, digest: str, label: str = "") -> Claim | None:
        """One claim attempt: fresh create, or takeover of an expired lease.

        Returns the held :class:`Claim` on success, ``None`` when the
        cell is validly held by someone else (back off and move on).
        Never blocks, never raises for contention.
        """
        path = self.path_for(digest)
        claim = Claim(
            digest=digest,
            label=label,
            worker=self.worker,
            generation=1,
            lease_s=self.lease_s,
            acquired_at=_now_s(),
        )
        if exclusive_create_text(path, claim.payload(claim.acquired_at)):
            return claim
        return self._try_takeover(path, digest, label)

    def _try_takeover(
        self, path: Path, digest: str, label: str
    ) -> Claim | None:
        """Steal an expired claim; exactly one contender can win.

        The rename-to-graveyard is the linearization point: the source
        file exists once, so among any number of racing contenders (and
        the possibly-still-running owner's heartbeat, which rewrites
        *into* the same name and therefore never resurrects a renamed
        file) exactly one ``os.rename`` succeeds.
        """
        if not self._expired(path):
            return None
        held = self._read(path) or {}
        generation = int(held.get("generation", 1) or 1) + 1
        grave = path.with_name(
            f"{digest}.g{generation}.dead.{os.getpid()}"
        )
        try:
            os.rename(path, grave)
        except OSError:
            return None  # lost the race (or the owner released in time)
        try:
            grave.unlink(missing_ok=True)
        except OSError:
            pass  # graveyard debris is harmless; cleaned by later runs
        claim = Claim(
            digest=digest,
            label=label,
            worker=self.worker,
            generation=generation,
            lease_s=self.lease_s,
            acquired_at=_now_s(),
        )
        if exclusive_create_text(path, claim.payload(claim.acquired_at)):
            _log.warning(
                "claim takeover: %s (%s) generation %d by %s "
                "(lease expired after %.1fs)",
                digest[:16],
                label,
                generation,
                self.worker,
                self.lease_s,
            )
            return claim
        return None  # a third party re-created it first; treat as held

    def refresh(self, claim: Claim) -> bool:
        """Heartbeat: re-publish the claim, bumping the lease mtime.

        Returns ``False`` when the lease was **lost** — the file now
        names a different worker/generation (takeover) — in which case
        nothing is written: the thief owns the cell now, and overwriting
        its claim would hand the lease back to a straggler.
        """
        path = self.path_for(claim.digest)
        held = self._read(path)
        if held is not None and (
            held.get("worker") != claim.worker
            or int(held.get("generation", 0) or 0) != claim.generation
        ):
            return False
        try:
            atomic_write_text(
                path, claim.payload(_now_s()), sync=False
            )
        except OSError:
            return False
        return True

    def release(self, claim: Claim) -> bool:
        """Drop a completed cell's claim (only if still ours).

        A lost lease is left alone — the file belongs to the thief.
        Returns whether the claim was actually removed.
        """
        path = self.path_for(claim.digest)
        held = self._read(path)
        if held is not None and (
            held.get("worker") != claim.worker
            or int(held.get("generation", 0) or 0) != claim.generation
        ):
            return False
        try:
            path.unlink(missing_ok=True)
        except OSError:
            return False
        return True

    def holder(self, digest: str) -> dict[str, Any] | None:
        """The current claim record for ``digest`` (diagnostics)."""
        return self._read(self.path_for(digest))
