"""Blessed atomic-write primitives for shared runtime state.

Claim files, manifests, cache entries, and ledger journals are *shared*
durable state: multiple worker processes — possibly on different hosts
over a shared filesystem — read and write them concurrently, and a
crash can land between any two syscalls.  Every write to such a path
must therefore be one of exactly three shapes:

* **publish** (:func:`atomic_write_bytes` / :func:`atomic_write_text`) —
  write the full content to a same-directory temp file, ``fsync`` it,
  then ``os.replace`` onto the destination.  Readers see either the old
  complete file or the new complete file, never a torn mix, on every
  POSIX filesystem where ``rename(2)`` is atomic;
* **claim** (:func:`exclusive_create_text`) — a single
  ``O_CREAT | O_EXCL`` create: exactly one of N racing processes wins,
  the rest get ``False``.  This is the mutual-exclusion primitive behind
  :mod:`repro.runtime.claims`;
* **append** — a single ``write()`` of one whole line on an append-mode
  handle (the :mod:`repro.runtime.ledger` journal's contract).

``gramer check`` rule **GRM802** flags bare ``open(..., "w")`` /
``.write_text`` / ``.write_bytes`` calls inside ``repro/runtime/`` so
new code routes through this module instead of reinventing a racy
write-in-place.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "exclusive_create_text",
    "fsync_directory",
]


def fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames/creates)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms/filesystems without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass  # durability here is best-effort by design
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes, sync: bool = True) -> None:
    """Publish ``data`` at ``path`` via tmp + fsync + rename.

    The temp file lives in the destination directory (same filesystem,
    so the final ``os.replace`` is atomic) and is suffixed with the pid
    so concurrent writers never collide on the staging name.  On any
    failure the temp file is removed and the original destination is
    left untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if sync:
            fsync_directory(path.parent)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass  # cleanup is best-effort; the raise below carries the cause
        raise


def atomic_write_text(
    path: Path, text: str, sync: bool = True, encoding: str = "utf-8"
) -> None:
    """Publish ``text`` at ``path`` via tmp + fsync + rename."""
    atomic_write_bytes(path, text.encode(encoding), sync=sync)


def exclusive_create_text(
    path: Path, text: str, encoding: str = "utf-8"
) -> bool:
    """Create ``path`` with ``text`` iff it does not exist (O_EXCL).

    Returns ``True`` when this process won the create.  ``False`` means
    another process holds the file.  The content is fsync'd before the
    function returns, so a winner that crashes immediately afterwards
    still leaves a readable claim behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    try:
        os.write(fd, text.encode(encoding))
        os.fsync(fd)
    finally:
        os.close(fd)
    return True
