"""Job specifications and results — the runtime's unit of work.

A :class:`JobSpec` is a frozen, hashable, picklable description of one
execution cell: which backend runs which application on which graph with
which configuration overrides.  A :class:`JobResult` is the complete
outcome — modeled seconds/energy, detail stats, mining summary, host wall
time, and cache/provenance metadata.

Both types are deliberately declarative: a spec carries no object
references (no graphs, no simulators), only names and scalars, so it can
cross process boundaries unchanged and serve directly as a content-address
for the artifact cache.  Determinism contract: two runs of the same spec —
in any process, at any worker count — produce results with identical
:meth:`JobResult.fingerprint`; only host wall time and cache provenance may
differ.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Mapping

__all__ = ["JobSpec", "JobResult", "make_jobspec"]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _freeze_overrides(
    overrides: Mapping[str, Any] | None, label: str
) -> tuple[tuple[str, Any], ...]:
    if not overrides:
        return ()
    frozen: list[tuple[str, Any]] = []
    for key in sorted(overrides):
        value = overrides[key]
        if hasattr(value, "item") and callable(value.item):
            value = value.item()  # numpy scalar
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"{label}[{key!r}] must be a scalar "
                f"(got {type(value).__name__}); specs stay declarative"
            )
        frozen.append((str(key), value))
    return tuple(frozen)


@dataclass(frozen=True)
class JobSpec:
    """One execution cell: (backend, app, graph, config overrides, seed).

    ``dataset``/``scale`` select a registered proxy graph;
    ``graph_path`` points at an edge-list file instead (mutually
    exclusive).  ``config`` holds backend-config overrides
    (:class:`~repro.accel.config.GramerConfig` fields for the simulator,
    :class:`~repro.baselines.cpu.CPUConfig` fields for the CPU models) and
    ``params`` holds backend-specific knobs beyond the config dataclass
    (energy parameters, RStream's frontier cap, ...), both as sorted
    ``(name, scalar)`` tuples so the spec stays hashable and
    content-addressable.
    """

    backend: str
    app: str
    dataset: str | None = None
    scale: str = "small"
    graph_path: str | None = None
    config: tuple[tuple[str, Any], ...] = ()
    params: tuple[tuple[str, Any], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if (self.dataset is None) == (self.graph_path is None):
            raise ValueError(
                "JobSpec needs exactly one of dataset= or graph_path="
            )

    @property
    def graph_name(self) -> str:
        """Display name of the input graph."""
        return self.dataset if self.dataset is not None else str(self.graph_path)

    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def cache_key(self) -> dict[str, Any]:
        """The content-address of this spec (all result-determining fields)."""
        return {"spec": asdict(self)}

    def label(self) -> str:
        """Short human label for progress lines."""
        return f"{self.backend}:{self.app}@{self.graph_name}/{self.scale}"


def make_jobspec(
    backend: str,
    app: str,
    dataset: str | None = None,
    scale: str = "small",
    graph_path: str | None = None,
    config: Mapping[str, Any] | None = None,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
) -> JobSpec:
    """Build a :class:`JobSpec`, normalizing override mappings."""
    return JobSpec(
        backend=backend,
        app=app,
        dataset=dataset,
        scale=scale,
        graph_path=graph_path,
        config=_freeze_overrides(config, "config"),
        params=_freeze_overrides(params, "params"),
        seed=seed,
    )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one :class:`JobSpec`.

    ``ok=False`` marks a job that raised (or timed out); ``error`` then
    carries ``"ExceptionType: message"``.  A model-level N/A (e.g. RStream
    out of disk) is still ``ok=True`` with ``seconds=None`` — the job ran
    and produced the paper's N/A cell.  ``detail`` mirrors the legacy
    ``CellResult.detail`` payload so migrated harness callers see
    byte-identical data.

    ``retries`` counts the *failed attempts that preceded this outcome*
    (0 = first try) across both in-process retries and executor-level
    resubmissions after a worker death or timeout; like ``wall_seconds``
    it is host provenance, excluded from :meth:`fingerprint`.
    """

    spec: JobSpec
    system: str
    ok: bool
    seconds: float | None
    energy_j: float | None
    detail: dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    error: str | None = None
    cached: bool = False
    cache_key: str = ""
    retries: int = 0

    def fingerprint(self) -> str:
        """Canonical JSON of every deterministic field.

        Excludes host wall time, cache provenance, and retry counts
        (``wall_seconds``, ``cached``, ``retries``) — the fields allowed
        to differ between a fresh run, a cached replay, a fault-recovered
        run, and different ``--jobs`` fan-outs.
        """
        payload: dict[str, Any] = {
            "spec": asdict(self.spec),
            "system": self.system,
            "ok": self.ok,
            "seconds": self.seconds,
            "energy_j": self.energy_j,
            "detail": self.detail,
            "error": self.error,
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), default=str
        )

    def as_cached(self) -> "JobResult":
        """Copy marked as served from the artifact cache."""
        return replace(self, cached=True)


def failed_result(
    spec: JobSpec,
    error: BaseException | str,
    wall_seconds: float = 0.0,
    retries: int = 0,
) -> JobResult:
    """A failure cell: the job died but the sweep carries on."""
    if isinstance(error, BaseException):
        message = f"{type(error).__name__}: {error}"
        kind = type(error).__name__
    else:
        message = str(error)
        kind = message.split(":", 1)[0]
    return JobResult(
        spec=spec,
        system=spec.backend,
        ok=False,
        seconds=None,
        energy_j=None,
        detail={"error_type": kind},
        wall_seconds=wall_seconds,
        error=message,
        retries=retries,
    )


__all__.append("failed_result")
