"""The distributed sweep worker: claim → run → publish → release.

``gramer sweep --workers N`` (or N hand-launched ``gramer worker``
processes on one host / one shared filesystem) all point at the same
three pieces of shared durable state:

* the **claim directory** (:class:`~repro.runtime.claims.ClaimStore`) —
  who is computing which cell right now;
* the **run ledger** (:class:`~repro.runtime.ledger.RunLedger`) — every
  worker appends to the same JSONL journal; whole-line appends are
  atomic, so the merged journal replays cleanly;
* the **artifact cache** (:class:`~repro.runtime.cache.ArtifactCache`)
  — results transport between workers as checksummed cache entries, so
  the cache is *required* (a distributed sweep without shared artifacts
  would have nothing to hand the consumer).

Each worker loops: replay the ledger, list the cells with no terminal
outcome whose artifacts validate, try to claim one, re-check it is
still unclaimed work after winning (the double-check closes the window
between ledger replay and claim), run it with a heartbeat thread
refreshing the lease, append the durable ``finish`` record, release the
claim.  A worker that dies mid-cell leaves a ``start`` record and a
claim whose lease expires; a sibling takes the claim over (generation
+1) and re-runs the cell — the paper's work-stealing, one level up.
When no claim can be had, the worker backs off with deterministic
seeded jitter (:func:`~repro.runtime.claims.claim_backoff_s`), so
contention never turns into a spin loop.

Exit condition: every cell has a terminal outcome (``ok`` with a
validating artifact, or ``failed`` — ``run_spec`` already spent the
transient-retry budget, so a distributed worker does not re-run
failures).  The worker summary says what *this* worker computed, how
many takeovers it performed, and how many leases it lost.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.log import get_logger

from .cache import JOB_KIND, ArtifactCache, default_cache
from .chaos import (
    FaultPlan,
    active_fault_plan,
    claim_race_delay_s,
    lease_expiry_stall_s,
)
from .claims import Claim, ClaimStore, claim_backoff_s
from .executor import run_spec
from .ledger import RunLedger, load_ledger, spec_digest
from .retry import DEFAULT_RETRY, RetryPolicy
from .spec import JobSpec

__all__ = ["SweepWorker", "WorkerSummary"]

_log = get_logger("runtime.worker")


@dataclass
class WorkerSummary:
    """What one worker contributed to a shared sweep."""

    worker: str
    computed: list[str] = field(default_factory=list)  # labels this run
    failed: list[str] = field(default_factory=list)
    takeovers: int = 0
    lost_leases: int = 0
    claim_rounds: int = 0
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed


class _Heartbeat:
    """Background lease refresher for one claimed cell.

    Refreshes every ``interval_s`` until stopped; remembers whether any
    refresh reported the lease lost (taken over), so the worker can
    ledger the loss after the cell finishes.  ``suppressed`` heartbeats
    (the ``lease-expiry`` chaos fault) skip the refresh entirely —
    modelling a straggler that stopped talking without dying.
    """

    def __init__(
        self, store: ClaimStore, claim: Claim, interval_s: float,
        suppressed: bool = False,
    ) -> None:
        self._store = store
        self._claim = claim
        self._interval_s = interval_s
        self._suppressed = suppressed
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if self._suppressed:
                continue
            if not self._store.refresh(self._claim):
                self._lost.set()
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    @property
    def lost(self) -> bool:
        return self._lost.is_set()


class SweepWorker:
    """One process's share of a claim-coordinated sweep grid."""

    def __init__(
        self,
        specs: Sequence[JobSpec],
        ledger_path: str | Path,
        claims_root: str | Path,
        worker_id: str,
        cache: ArtifactCache | None = None,
        lease_s: float = 30.0,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        poll_cap_s: float = 1.0,
    ) -> None:
        self.specs = list(specs)
        self.ledger_path = Path(ledger_path)
        self.worker_id = worker_id
        self.cache = cache if cache is not None else default_cache()
        if not self.cache.use_disk:
            raise ValueError(
                "distributed sweep workers need a disk-backed cache: "
                "results transport between workers as cache artifacts"
            )
        self.lease_s = lease_s
        self.heartbeat_s = max(0.05, lease_s / 4.0)
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.faults = faults if faults is not None else active_fault_plan()
        self.poll_cap_s = poll_cap_s
        self.claims = ClaimStore(claims_root, worker_id, lease_s=lease_s)
        self._digests = {spec_digest(spec): spec for spec in self.specs}

    # -- grid state ---------------------------------------------------------

    def _artifact_valid(self, spec: JobSpec) -> bool:
        return (
            self.cache.entry_checksum(JOB_KIND, spec.cache_key()) is not None
        )

    def _remaining(self) -> list[tuple[str, JobSpec]]:
        """Cells with no terminal outcome (or an ok outcome whose artifact
        was evicted/quarantined — those re-enter circulation)."""
        state = load_ledger(self.ledger_path)
        out: list[tuple[str, JobSpec]] = []
        for digest, spec in self._digests.items():
            entry = state.entries.get(digest)
            if entry is not None and entry.status == "failed":
                continue
            if (
                entry is not None
                and entry.completed
                and self._artifact_valid(spec)
            ):
                continue
            out.append((digest, spec))
        return out

    def _still_pending(self, digest: str, spec: JobSpec) -> bool:
        """Post-claim double check: did someone finish it meanwhile?

        Closes the window between ledger replay and claim acquisition —
        this re-check *after* winning the claim is what makes zero
        steady-state double-computes a property, not a probability.
        """
        entry = load_ledger(self.ledger_path).entries.get(digest)
        if entry is None:
            return True
        if entry.status == "failed":
            return False
        return not (entry.completed and self._artifact_valid(spec))

    # -- one cell -----------------------------------------------------------

    def _run_cell(
        self, ledger: RunLedger, claim: Claim, spec: JobSpec,
        summary: WorkerSummary,
    ) -> None:
        label = spec.label()
        stall_s = lease_expiry_stall_s(self.faults, label)
        with _Heartbeat(
            self.claims, claim, self.heartbeat_s, suppressed=stall_s > 0
        ) as heartbeat:
            if stall_s > 0:
                _log.warning(
                    "chaos: stalling %s for %.2fs with heartbeat "
                    "suppressed (lease %.2fs)",
                    label,
                    stall_s,
                    self.lease_s,
                )
                time.sleep(stall_s)
            ledger.job_started(spec, attempt=1)
            result = run_spec(
                spec,
                use_cache=True,
                cache=self.cache,
                retry=self.retry,
                faults=self.faults,
            )
            ledger.job_finished(result)
        if heartbeat.lost:
            summary.lost_leases += 1
            ledger.claim_event(
                claim.digest, label, claim.generation, "lost"
            )
            _log.warning(
                "lease lost mid-run for %s; duplicate result is "
                "byte-identical by the determinism contract",
                label,
            )
        elif self.claims.release(claim):
            ledger.claim_event(
                claim.digest, label, claim.generation, "released"
            )
        if result.ok:
            summary.computed.append(label)
        else:
            summary.failed.append(label)

    # -- the loop -----------------------------------------------------------

    def run(self) -> WorkerSummary:
        start = time.perf_counter()
        summary = WorkerSummary(worker=self.worker_id)
        ledger = RunLedger(self.ledger_path, worker=self.worker_id)
        ledger.sweep_started(
            total=len(self.specs), note=f"worker {self.worker_id}"
        )
        idle_rounds = 0
        try:
            while True:
                remaining = self._remaining()
                if not remaining:
                    break
                summary.claim_rounds += 1
                progressed = False
                for digest, spec in remaining:
                    label = spec.label()
                    delay = claim_race_delay_s(self.faults, label)
                    if delay > 0:
                        time.sleep(delay)
                    claim = self.claims.try_acquire(digest, label)
                    if claim is None:
                        continue
                    if claim.generation > 1:
                        summary.takeovers += 1
                        ledger.claim_event(
                            digest, label, claim.generation, "takeover"
                        )
                    else:
                        ledger.claim_event(digest, label, 1, "claimed")
                    if not self._still_pending(digest, spec):
                        # Finished elsewhere between replay and claim.
                        if self.claims.release(claim):
                            ledger.claim_event(
                                digest, label, claim.generation, "released"
                            )
                        continue
                    self._run_cell(ledger, claim, spec, summary)
                    progressed = True
                if progressed:
                    idle_rounds = 0
                    continue
                # Everything left is claimed by siblings: bounded,
                # deterministically jittered wait before re-checking.
                idle_rounds += 1
                time.sleep(
                    claim_backoff_s(
                        self.worker_id, idle_rounds, cap_s=self.poll_cap_s
                    )
                )
        finally:
            ledger.close()
        summary.wall_seconds = time.perf_counter() - start
        _log.info(
            "worker %s done: %d computed, %d failed, %d takeovers, "
            "%d lost leases in %.2fs",
            self.worker_id,
            len(summary.computed),
            len(summary.failed),
            summary.takeovers,
            summary.lost_leases,
            summary.wall_seconds,
        )
        return summary
