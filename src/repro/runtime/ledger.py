"""Crash-safe run ledger: an append-only JSONL journal of sweep progress.

Every job the :class:`~repro.runtime.executor.Executor` touches leaves two
records in the ledger — a ``start`` line when the attempt is handed to a
worker and a ``finish`` line when its outcome is known — each a single
JSON object on its own line.  Lines are written with one ``write()`` call
on an append-mode handle (atomic at the OS level for sane line sizes) and
``finish`` records are fsync'd, so a crash, OOM kill, or ^C loses at most
the in-flight attempt, never completed history.

Jobs are keyed by their **spec digest** (:func:`spec_digest` — the stable
content hash of the spec, independent of cache versioning), which is what
makes resumption safe: ``gramer sweep --resume <ledger>`` rebuilds the
same spec grid, skips every digest the ledger shows as ``ok``, and re-runs
failed or interrupted (started-but-never-finished) cells.  The ``finish``
record carries enough of the outcome (modeled seconds, energy, system,
retries) to render resumed cells in reports without recomputing them.

A truncated final line — the signature of a crash mid-write — is tolerated
on load and reported, not fatal.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, IO, Iterator, Mapping

from repro.obs.log import get_logger

from .cache import stable_hash
from .spec import JobResult, JobSpec

__all__ = [
    "LEDGER_VERSION",
    "ClaimRecord",
    "LedgerEntry",
    "LedgerState",
    "LedgerVersionError",
    "RunLedger",
    "load_ledger",
    "spec_digest",
]

#: Journal format version, written into every ``sweep_start`` header.
#: Replay **accepts older** versions (their records are a subset of what
#: the current loader understands) and **rejects newer** ones with a
#: :class:`LedgerVersionError` — a ledger written by a future runtime may
#: carry record shapes this loader would silently misparse.
#: v2: claim-lifecycle records + per-record ``worker`` provenance.
LEDGER_VERSION = 2


class LedgerVersionError(ValueError):
    """A ledger header declares a version newer than this runtime."""

_log = get_logger("runtime.ledger")


def spec_digest(spec: JobSpec) -> str:
    """Stable content address of a spec (independent of cache version)."""
    return stable_hash(asdict(spec))


@dataclass(frozen=True)
class LedgerEntry:
    """The last known outcome of one spec digest."""

    digest: str
    label: str
    status: str  # "ok" | "failed" | "started"
    retries: int = 0
    wall_seconds: float = 0.0
    seconds: float | None = None
    energy_j: float | None = None
    system: str = ""
    error: str | None = None

    @property
    def completed(self) -> bool:
        return self.status == "ok"


@dataclass(frozen=True)
class ClaimRecord:
    """One claim-lifecycle event replayed from the ledger.

    ``action`` is ``"claimed"`` (fresh O_EXCL acquisition),
    ``"takeover"`` (an expired lease re-claimed from a straggler),
    ``"released"`` (the owner finished and removed its claim), or
    ``"lost"`` (the owner noticed its lease had been taken over).
    """

    digest: str
    label: str
    worker: str
    generation: int
    action: str


@dataclass
class LedgerState:
    """Parsed view of a ledger file: final status per digest."""

    entries: dict[str, LedgerEntry] = field(default_factory=dict)
    attempts: dict[str, int] = field(default_factory=dict)
    truncated_lines: int = 0
    claims: list[ClaimRecord] = field(default_factory=list)
    finish_counts: dict[str, int] = field(default_factory=dict)
    version: int | None = None

    def completed_digests(self) -> set[str]:
        return {d for d, e in self.entries.items() if e.completed}

    def terminal_digests(self) -> set[str]:
        """Digests with a recorded outcome, ok *or* failed.

        Distributed workers treat a failed cell as terminal for the run
        (``run_spec`` already spent its transient-retry budget); only
        started-but-never-finished cells are re-claimable.
        """
        return {
            d for d, e in self.entries.items() if e.status in ("ok", "failed")
        }

    def takeover_digests(self) -> set[str]:
        """Digests whose claim was ever taken over from an expired lease."""
        return {c.digest for c in self.claims if c.action == "takeover"}

    def entry_for(self, spec: JobSpec) -> LedgerEntry | None:
        return self.entries.get(spec_digest(spec))

    def is_completed(self, spec: JobSpec) -> bool:
        entry = self.entry_for(spec)
        return entry is not None and entry.completed


class RunLedger:
    """Append-only journal handle for one sweep.

    The file is opened lazily on the first record and kept open for the
    run; ``flush()`` fsyncs whatever has been written (called on every
    ``finish`` record and on interrupt shutdown).
    """

    def __init__(self, path: str | Path, worker: str = "") -> None:
        self.path = Path(path)
        self.worker = worker
        self._handle: IO[str] | None = None

    # -- low-level record plumbing ------------------------------------------

    def _open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _append(self, record: Mapping[str, Any], sync: bool = False) -> None:
        line = json.dumps(dict(record), sort_keys=True, default=str)
        handle = self._open()
        handle.write(line + "\n")  # one write call: the line lands whole
        handle.flush()
        if sync:
            os.fsync(handle.fileno())

    def flush(self) -> None:
        """Force everything written so far onto disk."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- event records ------------------------------------------------------

    def sweep_started(self, total: int, note: str = "") -> None:
        """Header record: a new executor run over ``total`` specs began."""
        self._append(
            {
                "event": "sweep_start",
                "ledger_version": LEDGER_VERSION,
                "total": total,
                "note": note,
            },
            sync=True,
        )

    def job_started(self, spec: JobSpec, attempt: int) -> None:
        self._append(
            {
                "event": "start",
                "digest": spec_digest(spec),
                "label": spec.label(),
                "attempt": attempt,
                "worker": self.worker,
            }
        )

    def job_finished(self, result: JobResult) -> None:
        """Durable outcome record (fsync'd): this cell never re-runs."""
        self._append(
            {
                "event": "finish",
                "digest": spec_digest(result.spec),
                "label": result.spec.label(),
                "status": "ok" if result.ok else "failed",
                "retries": result.retries,
                "wall_seconds": result.wall_seconds,
                "seconds": result.seconds,
                "energy_j": result.energy_j,
                "system": result.system,
                "error": result.error,
                "cached": result.cached,
                "worker": self.worker,
            },
            sync=True,
        )

    def claim_event(
        self, digest: str, label: str, generation: int, action: str
    ) -> None:
        """Claim-lifecycle audit record (claimed/takeover/released/lost).

        Fsync'd: takeover accounting (the chaos suite's double-compute
        audit) must survive the very worker crashes it documents.
        """
        self._append(
            {
                "event": "claim",
                "digest": digest,
                "label": label,
                "worker": self.worker,
                "generation": generation,
                "action": action,
            },
            sync=True,
        )


def _iter_records(path: Path) -> Iterator[tuple[dict[str, Any] | None, str]]:
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                yield None, stripped
                continue
            if isinstance(record, dict):
                yield record, stripped
            else:
                yield None, stripped


def load_ledger(path: str | Path) -> LedgerState:
    """Replay a ledger file into its final per-digest state.

    Later records win (a re-run overwrites an earlier failure).  Torn or
    garbage lines — a crash mid-write — are counted and skipped, never
    fatal: the matching job simply reads as not-completed and re-runs.

    Version contract: a ``sweep_start`` header declaring a
    ``ledger_version`` **newer** than :data:`LEDGER_VERSION` raises
    :class:`LedgerVersionError` — its records may carry shapes this
    loader would silently misparse into wrong resume decisions.  Older
    versions replay fine (accept-older), and unknown *event* kinds from
    same-or-older versions are skipped without complaint.
    """
    path = Path(path)
    state = LedgerState()
    if not path.exists():
        return state
    for record, raw in _iter_records(path):
        if record is None:
            state.truncated_lines += 1
            _log.warning(
                "ledger %s: skipping torn/garbage line %r", path, raw[:80]
            )
            continue
        event = record.get("event")
        digest = record.get("digest")
        if event == "sweep_start":
            declared = record.get("ledger_version")
            if isinstance(declared, int):
                if declared > LEDGER_VERSION:
                    raise LedgerVersionError(
                        f"ledger {path} was written by a newer runtime "
                        f"(ledger_version {declared} > supported "
                        f"{LEDGER_VERSION}); refusing to replay it — "
                        "upgrade this installation or re-run the sweep "
                        "with a fresh ledger"
                    )
                state.version = (
                    declared
                    if state.version is None
                    else max(state.version, declared)
                )
        elif event == "claim" and isinstance(digest, str):
            state.claims.append(
                ClaimRecord(
                    digest=digest,
                    label=str(record.get("label", "")),
                    worker=str(record.get("worker", "")),
                    generation=int(record.get("generation", 1) or 1),
                    action=str(record.get("action", "")),
                )
            )
        elif event == "start" and isinstance(digest, str):
            state.attempts[digest] = state.attempts.get(digest, 0) + 1
            if digest not in state.entries or not state.entries[digest].completed:
                state.entries[digest] = LedgerEntry(
                    digest=digest,
                    label=str(record.get("label", "")),
                    status="started",
                )
        elif event == "finish" and isinstance(digest, str):
            state.finish_counts[digest] = (
                state.finish_counts.get(digest, 0) + 1
            )
            seconds = record.get("seconds")
            energy = record.get("energy_j")
            state.entries[digest] = LedgerEntry(
                digest=digest,
                label=str(record.get("label", "")),
                status=str(record.get("status", "failed")),
                retries=int(record.get("retries", 0) or 0),
                wall_seconds=float(record.get("wall_seconds", 0.0) or 0.0),
                seconds=float(seconds) if seconds is not None else None,
                energy_j=float(energy) if energy is not None else None,
                system=str(record.get("system", "")),
                error=(
                    str(record["error"])
                    if record.get("error") is not None
                    else None
                ),
            )
    return state
