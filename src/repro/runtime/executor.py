"""The job executor: inline or process-pool fan-out over ``JobSpec`` lists.

One call — :meth:`Executor.run` — takes an ordered list of
:class:`~repro.runtime.spec.JobSpec` and returns the matching ordered list
of :class:`~repro.runtime.spec.JobResult`:

* ``jobs=1`` (the default; overridable per-process via the ``GRAMER_JOBS``
  environment variable) executes inline, exactly like the old serial loops;
* ``jobs=N`` fans uncached specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` while results are
  collected **in submission order**, so output is deterministic regardless
  of worker count or completion order;
* a job that raises is captured as a failed ``JobResult`` (``ok=False``,
  ``error`` set) instead of aborting the sweep — one poisoned cell never
  kills its siblings;
* **transient** failures (pool/pickling breakage, timeouts, ``OSError``)
  are retried under a :class:`~repro.runtime.retry.RetryPolicy` with
  deterministic seeded backoff — in-process failures retry inside
  ``run_spec``; worker deaths and timeouts retry at the executor level in
  fresh-pool rounds.  **Permanent** failures (backend ``ValueError``,
  assertions) fail on the first attempt.  ``JobResult.retries`` counts the
  failed attempts either way;
* ``timeout_s`` caps how long the collector waits on any single job in
  pool mode.  A timeout fails (or requeues) only that job: in-flight
  siblings in the same pool run to completion, and the stuck worker is
  reaped when the round's survivors have finished — one hung cell no
  longer cancels the sweep;
* a ``KeyboardInterrupt`` shuts down cleanly: pool workers are
  terminated, the run ledger (when attached) is flushed so a later
  ``--resume`` skips everything that completed, and the interrupt
  propagates to the caller;
* completed ``JobResult``\\ s are memoized in the artifact cache (keyed by
  the spec's content hash), so re-running a sweep only recomputes changed
  cells.  Failed results are never cached — transient errors should not
  poison future runs;
* ``faults`` (or ``$GRAMER_FAULTS``) attaches a chaos
  :class:`~repro.runtime.chaos.FaultPlan`; see ``docs/resilience.md``.
"""

from __future__ import annotations

import os
import time
from concurrent import futures as _futures
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.access import AccessTrace, AccessTraceSet
from repro.obs.hooks import SimInstrument, emit_job_event, emit_job_retry
from repro.obs.log import get_logger
from repro.obs.tracer import Tracer

from .backends import get_backend, graph_digest_for, prime_graph_digest
from .cache import JOB_KIND, ArtifactCache, default_cache
from .chaos import (
    FaultPlan,
    active_fault_plan,
    apply_cache_corruption,
    apply_pre_run_faults,
)
from .ledger import RunLedger
from .retry import DEFAULT_RETRY, RetryPolicy, is_transient
from .spec import JobResult, JobSpec, failed_result

__all__ = ["Executor", "run_spec", "resolve_jobs"]

_ENV_JOBS = "GRAMER_JOBS"

ProgressFn = Callable[[JobResult, int, int], None]

_log = get_logger("runtime.executor")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$GRAMER_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    # gramer: ignore[GRM201] -- process-startup config: worker count shapes
    # scheduling only; results are fingerprint-identical at any width.
    env = os.environ.get(_ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            _log.warning(
                "ignoring non-integer %s=%r; running with 1 worker",
                _ENV_JOBS,
                env,
            )
    return 1


def run_spec(
    spec: JobSpec,
    use_cache: bool = True,
    cache: ArtifactCache | None = None,
    instrument: SimInstrument | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    first_attempt: int = 1,
    access_trace: AccessTrace | None = None,
) -> JobResult:
    """Execute one spec: cache lookup → backend run (with retry) → store.

    Never raises for job-level errors; they come back as a failed
    :class:`JobResult`.  Transient failures (see
    :func:`~repro.runtime.retry.classify_error`) are retried in-process
    up to ``retry.max_attempts`` total attempts with deterministic
    backoff; ``first_attempt`` offsets the attempt numbering when the
    executor resubmits a job whose earlier attempts died with their
    worker process.

    With ``instrument`` the cache is bypassed entirely — a trace only
    exists if the simulator actually runs — and backends exposing
    ``run_instrumented`` receive the hooks (others run normally).
    ``access_trace`` follows the same contract through backends'
    ``run_traced``; a backend without one runs normally and the trace
    stays empty.  The two channels buffer different event shapes and
    cannot be combined in one run.
    """
    if instrument is not None and access_trace is not None:
        raise ValueError("instrument and access_trace cannot be combined")
    cache = cache if cache is not None else default_cache()
    policy = retry if retry is not None else DEFAULT_RETRY
    plan = faults if faults is not None else active_fault_plan()
    key = spec.cache_key()
    label = spec.label()
    observed = instrument is not None or access_trace is not None
    if use_cache and not observed:
        hit, value = cache.lookup(JOB_KIND, key)
        if hit and isinstance(value, JobResult):
            _log.debug("cache hit %s", label)
            return value.as_cached()
    _log.debug("start %s", label)
    attempt = first_attempt
    total_start = time.perf_counter()
    while True:
        start = time.perf_counter()
        try:
            apply_pre_run_faults(plan, label, attempt)
            backend = get_backend(spec.backend)
            instrumented_run = (
                getattr(backend, "run_instrumented", None)
                if instrument is not None
                else None
            )
            traced_run = (
                getattr(backend, "run_traced", None)
                if access_trace is not None
                else None
            )
            if instrumented_run is not None:
                result = instrumented_run(spec, instrument)
            elif traced_run is not None:
                result = traced_run(spec, access_trace)
            else:
                result = backend.run(spec)
        except Exception as exc:  # noqa: BLE001 - failure isolation by design
            wall = time.perf_counter() - start
            if policy.should_retry(exc, attempt):
                delay = policy.delay_s(attempt, token=label)
                _log.warning(
                    "transient failure %s attempt %d (%s: %s); "
                    "retrying in %.3fs",
                    label,
                    attempt,
                    type(exc).__name__,
                    exc,
                    delay,
                )
                time.sleep(delay)
                attempt += 1
                continue
            _log.warning(
                "failed %s after %.3fs on attempt %d: %s",
                label,
                wall,
                attempt,
                exc,
            )
            return failed_result(
                spec,
                exc,
                wall_seconds=time.perf_counter() - total_start,
                retries=attempt - 1,
            )
        break
    from dataclasses import replace

    result = replace(
        result, cache_key=cache.digest(key), retries=attempt - 1
    )
    if use_cache and not observed and result.ok:
        cache.store(JOB_KIND, key, result)
        apply_cache_corruption(plan, cache, JOB_KIND, key, label, attempt)
    _log.debug("finish %s in %.3fs", label, result.wall_seconds)
    return result


def _pool_worker(
    spec: JobSpec,
    use_cache: bool,
    cache_root: str,
    cache_use_disk: bool,
    retry: RetryPolicy,
    faults: FaultPlan,
    graph_digest: str | None,
    first_attempt: int,
) -> JobResult:
    """Top-level (picklable) entry point for pool workers.

    Reconstructs the parent's cache from its root so job results land in
    the same store the parent (and future runs) will read.
    ``graph_digest`` is the spec's graph-store address, materialized by
    the parent before fan-out: the worker attaches to the artifact as a
    read-only memory map (warm in the page cache) instead of pickling,
    re-parsing, or regenerating the graph.  The retry policy and fault
    plan ride along as frozen values; ``first_attempt`` keeps attempt
    numbering monotonic across worker deaths.
    """
    cache = ArtifactCache(root=Path(cache_root), use_disk=cache_use_disk)
    prime_graph_digest(spec, graph_digest)
    return run_spec(
        spec,
        use_cache=use_cache,
        cache=cache,
        retry=retry,
        faults=faults,
        first_attempt=first_attempt,
    )


def _reap_pool(pool: _futures.ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting, terminating its processes."""
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        proc.terminate()


class Executor:
    """Run lists of job specs inline or across a process pool."""

    def __init__(
        self,
        jobs: int | None = None,
        timeout_s: float | None = None,
        use_cache: bool = True,
        cache: ArtifactCache | None = None,
        tracer: Tracer | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        ledger: RunLedger | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.timeout_s = timeout_s
        self.use_cache = use_cache
        self.cache = cache if cache is not None else default_cache()
        self.tracer = tracer
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.faults = faults if faults is not None else active_fault_plan()
        self.ledger = ledger

    def _trace_result(self, result: JobResult) -> None:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        now_us = time.perf_counter() * 1e6
        args: dict[str, object] = {
            "backend": result.spec.backend,
            "app": result.spec.app,
            "graph": result.spec.graph_name,
            "ok": result.ok,
            "retries": result.retries,
        }
        if result.error is not None:
            args["error"] = result.error
        emit_job_event(
            tracer,
            result.spec.label(),
            now_us,
            result.wall_seconds,
            result.cached,
            **args,
        )

    def _trace_retry(self, spec: JobSpec, attempt: int, error: str) -> None:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        emit_job_retry(
            tracer,
            spec.label(),
            time.perf_counter() * 1e6,
            attempt,
            error,
        )

    def run(
        self,
        specs: Sequence[JobSpec],
        progress: ProgressFn | None = None,
        instrument: SimInstrument | None = None,
        access_traces: AccessTraceSet | None = None,
    ) -> list[JobResult]:
        """Execute every spec; result ``i`` always corresponds to spec ``i``.

        With ``instrument``, every spec runs inline (hooks hold live
        object references and cannot cross process boundaries) and the
        cache is bypassed so each job actually simulates.
        ``access_traces`` works the same way: each spec runs inline with
        its own :class:`~repro.obs.access.AccessTrace` opened under the
        spec's label, cache bypassed in both directions.
        """
        if instrument is not None and access_traces is not None:
            raise ValueError(
                "instrument and access_traces cannot be combined"
            )
        total = len(specs)
        results: list[JobResult | None] = [None] * total

        def note(result: JobResult, index: int) -> None:
            results[index] = result
            self._trace_result(result)
            if self.ledger is not None:
                self.ledger.job_finished(result)
            if progress is not None:
                progress(result, index, total)

        def ledger_start(index: int, attempt: int) -> None:
            if self.ledger is not None:
                self.ledger.job_started(specs[index], attempt)

        if self.ledger is not None:
            self.ledger.sweep_started(total)

        try:
            if instrument is not None:
                for index, spec in enumerate(specs):
                    ledger_start(index, 1)
                    note(
                        run_spec(
                            spec,
                            False,
                            self.cache,
                            instrument=instrument,
                            retry=self.retry,
                            faults=self.faults,
                        ),
                        index,
                    )
                return [r for r in results if r is not None]

            if access_traces is not None:
                for index, spec in enumerate(specs):
                    ledger_start(index, 1)
                    trace = access_traces.open(
                        spec.label(),
                        backend=spec.backend,
                        app=spec.app,
                        graph=spec.graph_name,
                        scale=spec.scale,
                    )
                    note(
                        run_spec(
                            spec,
                            False,
                            self.cache,
                            retry=self.retry,
                            faults=self.faults,
                            access_trace=trace,
                        ),
                        index,
                    )
                return [r for r in results if r is not None]

            pending: list[int] = []
            for index, spec in enumerate(specs):
                if self.use_cache:
                    hit, value = self.cache.lookup(JOB_KIND, spec.cache_key())
                    if hit and isinstance(value, JobResult):
                        _log.debug("cache hit %s", spec.label())
                        note(value.as_cached(), index)
                        continue
                pending.append(index)

            if not pending:
                return [r for r in results if r is not None]

            solo_without_timeout = len(pending) == 1 and self.timeout_s is None
            if self.jobs <= 1 or solo_without_timeout:
                for index in pending:
                    ledger_start(index, 1)
                    note(
                        run_spec(
                            specs[index],
                            self.use_cache,
                            self.cache,
                            retry=self.retry,
                            faults=self.faults,
                        ),
                        index,
                    )
                return [r for r in results if r is not None]

            self._run_pool(specs, pending, note, ledger_start)
            return [r for r in results if r is not None]
        except KeyboardInterrupt:
            # Clean shutdown contract: whatever completed is durably in
            # the ledger; `gramer sweep --resume` picks up from here.
            if self.ledger is not None:
                self.ledger.flush()
            _log.warning("interrupted; ledger flushed, workers terminated")
            raise

    def _prewarm_graphs(
        self, specs: Sequence[JobSpec], pending: list[int]
    ) -> dict[int, str]:
        """Materialize each pending spec's graph once, in the parent.

        Returns ``{spec index: store digest}``; pool workers attach to
        the already-materialized artifacts through the OS page cache
        instead of regenerating or re-parsing per job.  Prewarm failures
        are non-fatal and merely unprimed: the worker re-resolves the
        graph itself, and any real defect surfaces as that job's own
        failed result.
        """
        digest_map: dict[int, str] = {}
        for index in pending:
            spec = specs[index]
            try:
                digest_map[index] = graph_digest_for(spec)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                _log.warning(
                    "graph prewarm failed for %s (%s: %s); "
                    "the worker will resolve it",
                    spec.label(),
                    type(exc).__name__,
                    exc,
                )
        return digest_map

    def _run_pool(
        self,
        specs: Sequence[JobSpec],
        pending: list[int],
        note: Callable[[JobResult, int], None],
        ledger_start: Callable[[int, int], None],
    ) -> None:
        """Fan ``pending`` out over fresh-pool retry rounds.

        Round semantics: every queued job is submitted to one pool and
        collected in submission order.  A timed-out or worker-killed job
        is requeued (while its retry budget lasts) without disturbing
        siblings still running in the same pool; the pool is reaped —
        stuck workers terminated — only after all of the round's
        survivors have been collected, then the next round starts with a
        brand-new pool.
        """
        policy = self.retry
        attempts: dict[int, int] = {index: 0 for index in pending}
        digest_map = self._prewarm_graphs(specs, pending)
        queue = list(pending)
        while queue:
            workers = min(self.jobs, len(queue))
            pool = _futures.ProcessPoolExecutor(max_workers=workers)
            next_queue: list[int] = []
            pool_dirty = False

            def requeue_or_fail(
                index: int, error: str, wall: float = 0.0
            ) -> None:
                attempts[index] += 1
                if attempts[index] < policy.max_attempts and is_transient(
                    error
                ):
                    self._trace_retry(specs[index], attempts[index], error)
                    _log.warning(
                        "transient pool failure %s attempt %d (%s); "
                        "will retry in a fresh pool",
                        specs[index].label(),
                        attempts[index],
                        error,
                    )
                    next_queue.append(index)
                else:
                    note(
                        failed_result(
                            specs[index],
                            error,
                            wall_seconds=wall,
                            retries=attempts[index] - 1,
                        ),
                        index,
                    )

            try:
                submitted = []
                for index in queue:
                    ledger_start(index, attempts[index] + 1)
                    submitted.append(
                        (
                            index,
                            pool.submit(
                                _pool_worker,
                                specs[index],
                                self.use_cache,
                                str(self.cache.root),
                                self.cache.use_disk,
                                policy,
                                self.faults,
                                digest_map.get(index),
                                attempts[index] + 1,
                            ),
                        )
                    )
                for index, future in submitted:
                    spec = specs[index]
                    try:
                        result = future.result(timeout=self.timeout_s)
                    except _futures.TimeoutError:
                        # Fail/requeue only this job; siblings already in
                        # flight keep their workers.  The stuck process is
                        # reaped when the round ends.
                        future.cancel()
                        pool_dirty = True
                        requeue_or_fail(
                            index,
                            f"TimeoutError: job exceeded {self.timeout_s}s",
                        )
                        continue
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # pool/pickling breakage
                        if isinstance(exc, _futures.BrokenExecutor):
                            pool_dirty = True
                        requeue_or_fail(index, f"{type(exc).__name__}: {exc}")
                        continue
                    # Mirror the worker's disk entry into this process's
                    # memory tier so later same-process lookups are free.
                    attempts[index] = result.retries + 1
                    if self.use_cache and result.ok:
                        key = spec.cache_key()
                        self.cache.store(JOB_KIND, key, result)
                        apply_cache_corruption(
                            self.faults,
                            self.cache,
                            JOB_KIND,
                            key,
                            spec.label(),
                            attempts[index],
                        )
                    note(result, index)
            except KeyboardInterrupt:
                _reap_pool(pool)
                raise
            finally:
                if pool_dirty:
                    # Don't wait on stuck workers; reap them so a hung
                    # cell cannot outlive its round.
                    _reap_pool(pool)
                else:
                    pool.shutdown(wait=True)

            if next_queue:
                delay = max(
                    policy.delay_s(attempts[i], token=specs[i].label())
                    for i in next_queue
                )
                _log.warning(
                    "retry round: %d job(s) resubmitted after %.3fs backoff",
                    len(next_queue),
                    delay,
                )
                time.sleep(delay)
            queue = next_queue
