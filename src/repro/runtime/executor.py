"""The job executor: inline or process-pool fan-out over ``JobSpec`` lists.

One call — :meth:`Executor.run` — takes an ordered list of
:class:`~repro.runtime.spec.JobSpec` and returns the matching ordered list
of :class:`~repro.runtime.spec.JobResult`:

* ``jobs=1`` (the default; overridable per-process via the ``GRAMER_JOBS``
  environment variable) executes inline, exactly like the old serial loops;
* ``jobs=N`` fans uncached specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` while results are
  collected **in submission order**, so output is deterministic regardless
  of worker count or completion order;
* a job that raises is captured as a failed ``JobResult`` (``ok=False``,
  ``error`` set) instead of aborting the sweep — one poisoned cell never
  kills its siblings;
* ``timeout_s`` caps how long the collector waits on any single job in
  pool mode (the stuck cell becomes a failed result; inline execution is
  single-threaded and cannot be preempted, so the cap applies only when
  fanned out);
* completed ``JobResult``\\ s are memoized in the artifact cache (keyed by
  the spec's content hash), so re-running a sweep only recomputes changed
  cells.  Failed results are never cached — transient errors should not
  poison future runs.
"""

from __future__ import annotations

import os
import time
from concurrent import futures as _futures
from pathlib import Path
from typing import Callable, Sequence

from repro.obs.hooks import SimInstrument
from repro.obs.log import get_logger
from repro.obs.tracer import CATEGORY_EXECUTOR, PID_EXECUTOR, Tracer

from .backends import get_backend
from .cache import ArtifactCache, default_cache
from .spec import JobResult, JobSpec, failed_result

__all__ = ["Executor", "run_spec", "resolve_jobs"]

_ENV_JOBS = "GRAMER_JOBS"
_JOB_KIND = "job"

ProgressFn = Callable[[JobResult, int, int], None]

_log = get_logger("runtime.executor")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, else ``$GRAMER_JOBS``, else 1."""
    if jobs is not None:
        return max(1, int(jobs))
    # gramer: ignore[GRM201] -- process-startup config: worker count shapes
    # scheduling only; results are fingerprint-identical at any width.
    env = os.environ.get(_ENV_JOBS, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def run_spec(
    spec: JobSpec,
    use_cache: bool = True,
    cache: ArtifactCache | None = None,
    instrument: SimInstrument | None = None,
) -> JobResult:
    """Execute one spec: cache lookup → backend run → cache store.

    Never raises for job-level errors; they come back as a failed
    :class:`JobResult`.

    With ``instrument`` the cache is bypassed entirely — a trace only
    exists if the simulator actually runs — and backends exposing
    ``run_instrumented`` receive the hooks (others run normally).
    """
    cache = cache if cache is not None else default_cache()
    key = spec.cache_key()
    if use_cache and instrument is None:
        hit, value = cache.lookup(_JOB_KIND, key)
        if hit and isinstance(value, JobResult):
            _log.debug("cache hit %s", spec.label())
            return value.as_cached()
    _log.debug("start %s", spec.label())
    start = time.perf_counter()
    try:
        backend = get_backend(spec.backend)
        instrumented_run = (
            getattr(backend, "run_instrumented", None)
            if instrument is not None
            else None
        )
        if instrumented_run is not None:
            result = instrumented_run(spec, instrument)
        else:
            result = backend.run(spec)
    except Exception as exc:  # noqa: BLE001 - failure isolation by design
        wall = time.perf_counter() - start
        _log.warning("failed %s after %.3fs: %s", spec.label(), wall, exc)
        return failed_result(spec, exc, wall_seconds=wall)
    from dataclasses import replace

    result = replace(result, cache_key=cache.digest(key))
    if use_cache and instrument is None and result.ok:
        cache.store(_JOB_KIND, key, result)
    _log.debug("finish %s in %.3fs", spec.label(), result.wall_seconds)
    return result


def _pool_worker(
    spec: JobSpec, use_cache: bool, cache_root: str, cache_use_disk: bool
) -> JobResult:
    """Top-level (picklable) entry point for pool workers.

    Reconstructs the parent's cache from its root so job results land in
    the same store the parent (and future runs) will read.
    """
    cache = ArtifactCache(root=Path(cache_root), use_disk=cache_use_disk)
    return run_spec(spec, use_cache=use_cache, cache=cache)


class Executor:
    """Run lists of job specs inline or across a process pool."""

    def __init__(
        self,
        jobs: int | None = None,
        timeout_s: float | None = None,
        use_cache: bool = True,
        cache: ArtifactCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.timeout_s = timeout_s
        self.use_cache = use_cache
        self.cache = cache if cache is not None else default_cache()
        self.tracer = tracer

    def _trace_result(self, result: JobResult) -> None:
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        now_us = time.perf_counter() * 1e6
        args: dict[str, object] = {
            "backend": result.spec.backend,
            "app": result.spec.app,
            "graph": result.spec.graph_name,
            "ok": result.ok,
            "cached": result.cached,
        }
        if result.error is not None:
            args["error"] = result.error
        if result.cached:
            tracer.instant(
                f"job {result.spec.label()}",
                CATEGORY_EXECUTOR,
                now_us,
                PID_EXECUTOR,
                0,
                **args,
            )
        else:
            dur_us = result.wall_seconds * 1e6
            tracer.complete(
                f"job {result.spec.label()}",
                CATEGORY_EXECUTOR,
                max(now_us - dur_us, 0.0),
                dur_us,
                PID_EXECUTOR,
                0,
                **args,
            )

    def run(
        self,
        specs: Sequence[JobSpec],
        progress: ProgressFn | None = None,
        instrument: SimInstrument | None = None,
    ) -> list[JobResult]:
        """Execute every spec; result ``i`` always corresponds to spec ``i``.

        With ``instrument``, every spec runs inline (hooks hold live
        object references and cannot cross process boundaries) and the
        cache is bypassed so each job actually simulates.
        """
        total = len(specs)
        results: list[JobResult | None] = [None] * total

        def note(result: JobResult, index: int) -> None:
            results[index] = result
            self._trace_result(result)
            if progress is not None:
                progress(result, index, total)

        if instrument is not None:
            for index, spec in enumerate(specs):
                note(
                    run_spec(spec, False, self.cache, instrument=instrument),
                    index,
                )
            return [r for r in results if r is not None]

        pending: list[int] = []
        for index, spec in enumerate(specs):
            if self.use_cache:
                hit, value = self.cache.lookup(_JOB_KIND, spec.cache_key())
                if hit and isinstance(value, JobResult):
                    _log.debug("cache hit %s", spec.label())
                    note(value.as_cached(), index)
                    continue
            pending.append(index)

        if not pending:
            return [r for r in results if r is not None]

        solo_without_timeout = len(pending) == 1 and self.timeout_s is None
        if self.jobs <= 1 or solo_without_timeout:
            for index in pending:
                note(
                    run_spec(specs[index], self.use_cache, self.cache), index
                )
            return [r for r in results if r is not None]

        workers = min(self.jobs, len(pending))
        timed_out = False
        pool = _futures.ProcessPoolExecutor(max_workers=workers)
        try:
            submitted = [
                (
                    index,
                    pool.submit(
                        _pool_worker,
                        specs[index],
                        self.use_cache,
                        str(self.cache.root),
                        self.cache.use_disk,
                    ),
                )
                for index in pending
            ]
            for index, future in submitted:
                spec = specs[index]
                try:
                    result = future.result(timeout=self.timeout_s)
                except _futures.TimeoutError:
                    # Queue wait counts: a job starved behind a stuck
                    # sibling times out too, rather than blocking forever.
                    future.cancel()
                    timed_out = True
                    note(
                        failed_result(
                            spec,
                            f"TimeoutError: job exceeded {self.timeout_s}s",
                        ),
                        index,
                    )
                    continue
                except Exception as exc:  # pool/pickling breakage
                    note(failed_result(spec, exc), index)
                    continue
                # Mirror the worker's disk entry into this process's memory
                # tier so later same-process lookups are free.
                if self.use_cache and result.ok:
                    self.cache.store(_JOB_KIND, spec.cache_key(), result)
                note(result, index)
        finally:
            if timed_out:
                # Don't wait on stuck workers; reap them so a hung cell
                # cannot outlive the sweep.
                pool.shutdown(wait=False, cancel_futures=True)
                for proc in list((getattr(pool, "_processes", None) or {}).values()):
                    proc.terminate()
            else:
                pool.shutdown(wait=True)
        return [r for r in results if r is not None]
