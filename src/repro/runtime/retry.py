"""Retry policy: error classification and deterministic backoff.

A sweep cell can die two ways.  *Permanent* failures — a backend
``ValueError``, an assertion, a model-level
:class:`~repro.accel.sim.AncestorBufferOverflowError` — are properties of
the spec itself: running the same job again produces the same failure, so
retrying only burns time.  *Transient* failures — a worker OOM-killed
mid-job (``BrokenProcessPool``), a pickling hiccup, a per-job timeout, any
``OSError`` — are properties of the *host*, and a second attempt usually
succeeds.  :func:`classify_error` encodes that split; :class:`RetryPolicy`
bounds attempts and spaces them with exponential backoff whose jitter is
*seeded* (hash of policy seed, job token, and attempt number), so two runs
of the same sweep back off identically — determinism extends to the
recovery path.

The classifier accepts live exceptions *and* the ``"Type: message"``
strings a :class:`~repro.runtime.spec.JobResult` carries, because
pool-level failures (a SIGKILLed worker) surface only as strings in the
parent process.
"""

from __future__ import annotations

import hashlib
import pickle
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass

__all__ = [
    "DEFAULT_RETRY",
    "NO_RETRY",
    "PERMANENT",
    "RetryPolicy",
    "TRANSIENT",
    "classify_error",
    "is_transient",
]

#: Classification labels returned by :func:`classify_error`.
TRANSIENT = "transient"
PERMANENT = "permanent"

# Host-side breakage: retrying is expected to succeed.  ``OSError`` covers
# the disk/IPC family (BrokenPipeError, ConnectionError, ...); the chaos
# harness's injected fault derives from OSError so injections are
# transient by construction.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    OSError,
    TimeoutError,
    FuturesTimeoutError,
    BrokenExecutor,  # includes BrokenProcessPool
    pickle.PickleError,
    EOFError,
    MemoryError,
)

# String-side classification for error messages crossing process
# boundaries ("BrokenProcessPool: ...", "TimeoutError: job exceeded 5s").
_TRANSIENT_NAMES = frozenset(
    {
        "OSError",
        "IOError",
        "TimeoutError",
        "BrokenProcessPool",
        "BrokenExecutor",
        "PicklingError",
        "UnpicklingError",
        "PickleError",
        "EOFError",
        "MemoryError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "InterruptedError",
        "InjectedFaultError",
    }
)


def classify_error(error: BaseException | str) -> str:
    """``TRANSIENT`` (worth retrying) or ``PERMANENT`` (fail fast).

    Unknown exception types default to *permanent*: a retry budget spent
    on a deterministic bug delays the sweep without changing its outcome.
    """
    if isinstance(error, BaseException):
        if isinstance(error, _TRANSIENT_TYPES):
            return TRANSIENT
        return PERMANENT
    name = str(error).split(":", 1)[0].strip()
    # Qualified names ("concurrent.futures.process.BrokenProcessPool").
    name = name.rsplit(".", 1)[-1]
    return TRANSIENT if name in _TRANSIENT_NAMES else PERMANENT


def is_transient(error: BaseException | str) -> bool:
    """Shorthand for ``classify_error(error) == TRANSIENT``."""
    return classify_error(error) == TRANSIENT


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministically jittered exponential backoff.

    ``max_attempts`` counts *total* tries (1 = no retries).  Attempt ``k``
    (1-based) failing transiently waits
    ``min(base_delay_s * 2**(k-1), max_delay_s)`` scaled by a jitter
    factor in ``[1 - jitter, 1 + jitter]`` drawn from a hash of
    ``(seed, token, k)`` — no global RNG, no wall clock, same delays on
    every host.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, error: BaseException | str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) failing with
        ``error`` deserves another try."""
        return attempt < self.max_attempts and is_transient(error)

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before the attempt *after* ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.base_delay_s * (2.0 ** (attempt - 1)), self.max_delay_s)
        if self.jitter == 0.0 or base == 0.0:
            return base
        digest = hashlib.sha256(
            f"{self.seed}|{token}|{attempt}".encode()
        ).digest()
        # 8 bytes of hash -> uniform unit float -> factor in [1-j, 1+j].
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        factor = 1.0 + self.jitter * (2.0 * unit - 1.0)
        return base * factor


#: The runtime's default recovery stance: two retries with ~50ms/100ms
#: backoff before a transient failure becomes final.
DEFAULT_RETRY = RetryPolicy()

#: Single-attempt policy for callers that want the pre-resilience
#: fail-fast behavior (and for tests asserting first-failure paths).
NO_RETRY = RetryPolicy(max_attempts=1)
