"""Fault injection for the execution runtime — the chaos harness.

The resilience layer (retry, pool replacement, ledger resume, cache
quarantine) only earns trust if its recovery paths are *exercised*, not
just written.  This module injects four deterministic fault kinds into
job execution:

* ``kill`` — the worker process SIGKILLs itself mid-job (models an OOM
  kill; breaks the whole pool, which the executor must replace);
* ``hang`` — the job sleeps past its timeout (models a livelock; the
  executor must fail/retry it without reaping healthy siblings);
* ``raise`` — the job raises :class:`InjectedFaultError` (an ``OSError``
  subclass, so it is *transient* by the retry classifier's own rules);
* ``corrupt`` — after the job's result is stored, its artifact-cache disk
  entry is bit-flipped and evicted from the memory tier (the next read
  must checksum-fail, quarantine, and recompute);
* ``claim-race`` — a distributed sweep worker delays before every claim
  attempt, aligning racing workers onto the same cells so the
  ``O_CREAT|O_EXCL`` exclusivity of :mod:`repro.runtime.claims` is
  exercised under maximum contention;
* ``lease-expiry`` — a distributed sweep worker suppresses its lease
  heartbeat and stalls mid-cell past the TTL, so a sibling must take the
  claim over *while the straggler is still running* (the straggler then
  finishes as a benign, byte-identical duplicate).

Faults are described by a :class:`FaultPlan` — a frozen, picklable value
that crosses into pool workers — and each :class:`FaultSpec` names the
*attempt number* it fires on, so a fault plan is a deterministic script:
``raise@1`` fails the first attempt and lets the retry succeed.  Plans
come from ``Executor(faults=...)`` or the ``GRAMER_FAULTS`` environment
variable (``kind[:seconds][@attempt][=label-substring]``, ``;``-separated,
e.g. ``kill@1=gramer:3-CF;raise@1=fractal;lease-expiry:2.5@1``; the
optional ``:seconds`` sets the duration knob — hang length, claim-race
delay, or mid-cell stall).

Chaos tests assert the end state: a fault-injected sweep converges to
results byte-identical (``JobResult.fingerprint``) to a fault-free run.
"""

from __future__ import annotations

import os
import signal
import time

from dataclasses import dataclass

from repro.obs.log import get_logger

from .cache import ArtifactCache

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "active_fault_plan",
    "apply_cache_corruption",
    "apply_pre_run_faults",
    "claim_race_delay_s",
    "corrupt_entry",
    "lease_expiry_stall_s",
    "parse_fault_plan",
]

_ENV_FAULTS = "GRAMER_FAULTS"

FAULT_KINDS = ("kill", "hang", "raise", "corrupt", "claim-race", "lease-expiry")

_log = get_logger("runtime.chaos")


class InjectedFaultError(OSError):
    """A chaos-injected failure.

    Subclasses ``OSError`` deliberately: injections model host-side
    breakage, so :func:`repro.runtime.retry.classify_error` sees them as
    transient without a special case.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: what to do, to which jobs, on which attempt."""

    kind: str
    match: str = ""  # substring of ``spec.label()``; "" matches every job
    attempt: int = 1  # 1-based attempt number the fault fires on
    # Duration knob (the ``:seconds`` token): hang length for ``hang``,
    # pre-claim delay for ``claim-race``, mid-cell stall for
    # ``lease-expiry``.  The claim-race default is small on purpose —
    # just enough to line contending workers up on the same cells.
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise ValueError("fault attempt is 1-based")

    def applies(self, label: str, attempt: int) -> bool:
        return attempt == self.attempt and (
            not self.match or self.match in label
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable script of faults for one run."""

    faults: tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def matching(self, label: str, attempt: int) -> list[FaultSpec]:
        return [f for f in self.faults if f.applies(label, attempt)]


_DEFAULT_DURATION_S = {"claim-race": 0.05}


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse ``GRAMER_FAULTS`` syntax into a plan.

    Tokens are ``;``-separated, each ``kind[:seconds][@attempt][=match]``
    (``:seconds`` sets the duration knob for hang/claim-race/
    lease-expiry).  Malformed tokens are *dropped with a logged warning*
    naming the bad value — a typo'd fault plan must not silently run
    fault-free (the same contract ``resolve_jobs`` applies to
    ``GRAMER_JOBS``).
    """
    faults: list[FaultSpec] = []
    for token in text.split(";"):
        token = token.strip()
        if not token:
            continue
        head, _, match = token.partition("=")
        kind_part, _, attempt_text = head.strip().partition("@")
        kind, _, duration_text = kind_part.strip().partition(":")
        kind = kind.strip()
        try:
            attempt = int(attempt_text) if attempt_text.strip() else 1
            if duration_text.strip():
                hang_s = float(duration_text)
            else:
                hang_s = _DEFAULT_DURATION_S.get(kind, 30.0)
            faults.append(
                FaultSpec(
                    kind=kind,
                    match=match.strip(),
                    attempt=attempt,
                    hang_s=hang_s,
                )
            )
        except ValueError as exc:
            _log.warning(
                "ignoring malformed %s token %r: %s", _ENV_FAULTS, token, exc
            )
    return FaultPlan(faults=tuple(faults))


def active_fault_plan() -> FaultPlan:
    """The plan scripted by ``$GRAMER_FAULTS`` (empty when unset)."""
    # gramer: ignore[GRM201] -- chaos-harness switch: injects *failures*
    # for resilience tests; recovered results are asserted byte-identical
    # to fault-free runs, so no cached value can depend on it.
    text = os.environ.get(_ENV_FAULTS, "")
    if not text.strip():
        return FaultPlan()
    return parse_fault_plan(text)


def apply_pre_run_faults(
    plan: FaultPlan, label: str, attempt: int
) -> None:
    """Fire ``kill``/``hang``/``raise`` faults scripted for this attempt.

    Called by :func:`~repro.runtime.executor.run_spec` inside its
    per-attempt ``try`` block, so a ``raise`` injection flows through the
    exact same classification/retry path a real transient failure would.
    """
    for fault in plan.matching(label, attempt):
        if fault.kind == "kill":
            _log.warning(
                "chaos: SIGKILL worker pid=%d for %s attempt %d",
                os.getpid(),
                label,
                attempt,
            )
            os.kill(os.getpid(), signal.SIGKILL)
        elif fault.kind == "hang":
            _log.warning(
                "chaos: hanging %s attempt %d for %.1fs",
                label,
                attempt,
                fault.hang_s,
            )
            time.sleep(fault.hang_s)
        elif fault.kind == "raise":
            raise InjectedFaultError(
                f"injected fault for {label} attempt {attempt}"
            )


def claim_race_delay_s(plan: FaultPlan, label: str, attempt: int = 1) -> float:
    """Total scripted pre-claim delay for this cell (0.0 = no fault).

    Called by the distributed sweep worker immediately before each claim
    attempt; the delay widens the race window so contending workers hit
    ``O_CREAT|O_EXCL`` on the same cells at the same moment.
    """
    return sum(
        fault.hang_s
        for fault in plan.matching(label, attempt)
        if fault.kind == "claim-race"
    )


def lease_expiry_stall_s(
    plan: FaultPlan, label: str, attempt: int = 1
) -> float:
    """Scripted mid-cell stall with the heartbeat suppressed (0.0 = none).

    A positive value makes the worker hold its claim *without
    refreshing* for that long before running the cell — modelling a
    straggler whose lease must expire mid-run and be taken over by a
    sibling.
    """
    return max(
        (
            fault.hang_s
            for fault in plan.matching(label, attempt)
            if fault.kind == "lease-expiry"
        ),
        default=0.0,
    )


def corrupt_entry(cache: ArtifactCache, kind: str, key: object) -> bool:
    """Bit-flip ``(kind, key)``'s disk entry and drop its memory copy.

    Returns whether a disk entry existed to corrupt.  The corruption is a
    single inverted byte mid-file — enough to fail the content checksum
    without changing the file's size or envelope shape.
    """
    path = cache.entry_path(kind, key)
    cache.evict_memory(kind, key)
    if not path.exists():
        return False
    data = bytearray(path.read_bytes())
    if not data:
        return False
    index = len(data) // 2
    data[index] ^= 0xFF
    # gramer: ignore[GRM802] -- deliberately *non*-atomic write-in-place:
    # this simulates the corruption the atomic helpers exist to prevent.
    path.write_bytes(bytes(data))
    return True


def apply_cache_corruption(
    plan: FaultPlan,
    cache: ArtifactCache,
    kind: str,
    key: object,
    label: str,
    attempt: int,
) -> None:
    """Fire ``corrupt`` faults scripted for this attempt (post-store)."""
    for fault in plan.matching(label, attempt):
        if fault.kind != "corrupt":
            continue
        if corrupt_entry(cache, kind, key):
            _log.warning(
                "chaos: corrupted cache entry for %s attempt %d",
                label,
                attempt,
            )
