"""Merkle-manifested sweep artifacts: seal a grid, prove it later.

A finished distributed sweep leaves its results scattered across the
shared artifact cache — one checksummed envelope per cell.  The
**manifest** turns that pile into a single verifiable object: one JSON
file whose *leaves* bind each :func:`~repro.runtime.ledger.spec_digest`
to the sha256 of its cached artifact payload, and whose **Merkle root**
commits to the whole set at once.  Any worker can seal it (sealing only
reads); anyone holding the manifest can later prove two properties
without trusting the producer:

* **completeness** — every cell of the declared grid has a leaf (the
  manifest embeds the full spec of each leaf, so the grid is
  re-derivable from the manifest alone, and ``verify`` can also be
  handed an externally rebuilt spec list to cross-check against);
* **integrity** — every leaf's artifact still exists in the cache and
  still hashes to the manifested sha256.  Integrity reads go through
  :meth:`~repro.runtime.cache.ArtifactCache.entry_checksum`, so a
  corrupt entry is *quarantined* on the spot and reported by exact
  spec_digest — the operator re-runs the sweep and only the quarantined
  cells recompute.

Format (``manifest_version`` 1): canonical JSON, one object::

    {"manifest_version": 1, "cache_version": 2, "root": "<sha256>",
     "grid": {"cells": N, "backends": [...], "apps": [...],
              "graphs": [...], "scales": [...]},
     "leaves": [{"spec_digest": ..., "label": ..., "cache_digest": ...,
                 "artifact_sha256": ..., "fingerprint_sha256": ...,
                 "spec": {...}}, ...]}

Each leaf binds the artifact at two layers: ``artifact_sha256`` is the
exact cached payload bytes (cheap to check, no unpickling), and
``fingerprint_sha256`` hashes the result's deterministic-field
fingerprint (:meth:`~repro.runtime.spec.JobResult.fingerprint`, which
excludes wall time / cache provenance / retry counts).  A
quarantined-and-recomputed cell produces new payload bytes but the same
fingerprint — verification reports it as *recomputed*, not corrupt,
because the byte-identity contract holds exactly where the runtime
promises it.

Leaves are sorted by ``spec_digest``; each leaf's hash is the sha256 of
its canonical JSON encoding, and the root folds the leaf hashes pairwise
(odd node promoted) — so any single-byte tamper of any leaf, and any
added/dropped leaf, changes the root.  The file itself is published with
the blessed tmp+fsync+rename helper and never mutated in place.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.obs.log import get_logger

from .atomicio import atomic_write_text
from .cache import CACHE_VERSION, JOB_KIND, ArtifactCache
from .ledger import spec_digest
from .spec import JobResult, JobSpec

__all__ = [
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestError",
    "VerifyReport",
    "build_manifest",
    "leaf_hash",
    "load_manifest",
    "merkle_root",
    "seal_manifest",
    "verify_manifest",
]

MANIFEST_VERSION = 1

_log = get_logger("runtime.manifest")


class ManifestError(ValueError):
    """A manifest cannot be sealed or parsed (incomplete grid, bad file)."""


def _canonical_json(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def leaf_hash(leaf: dict[str, Any]) -> str:
    """Content hash of one leaf: sha256 of its canonical JSON."""
    return hashlib.sha256(_canonical_json(leaf).encode("utf-8")).hexdigest()


def merkle_root(hashes: Sequence[str]) -> str:
    """Fold leaf hashes pairwise into one root commitment.

    Level by level: ``parent = sha256(left + right)`` over the hex
    digests; an odd trailing node is promoted unchanged.  The empty
    set's root is ``sha256(b"")`` — a sealed-but-empty manifest is still
    a definite statement.
    """
    if not hashes:
        return hashlib.sha256(b"").hexdigest()
    level = list(hashes)
    while len(level) > 1:
        nxt: list[str] = []
        for i in range(0, len(level) - 1, 2):
            pair = (level[i] + level[i + 1]).encode("ascii")
            nxt.append(hashlib.sha256(pair).hexdigest())
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


@dataclass(frozen=True)
class Manifest:
    """A sealed (or loaded) manifest: grid metadata + leaves + root."""

    root: str
    leaves: tuple[dict[str, Any], ...]
    grid: dict[str, Any]
    manifest_version: int = MANIFEST_VERSION
    cache_version: int = CACHE_VERSION

    def leaf_for(self, digest: str) -> dict[str, Any] | None:
        for leaf in self.leaves:
            if leaf.get("spec_digest") == digest:
                return leaf
        return None

    def spec_digests(self) -> set[str]:
        return {str(leaf["spec_digest"]) for leaf in self.leaves}

    def as_dict(self) -> dict[str, Any]:
        return {
            "manifest_version": self.manifest_version,
            "cache_version": self.cache_version,
            "root": self.root,
            "grid": self.grid,
            "leaves": list(self.leaves),
        }


@dataclass
class VerifyReport:
    """The outcome of one verification pass, by exact spec_digest.

    ``missing`` — manifested artifact absent from the cache;
    ``corrupt`` — artifact present but failed envelope verification
    (it has already been quarantined by the check itself);
    ``mismatched`` — artifact verifies internally but neither its
    payload hash *nor* its deterministic fingerprint matches the leaf
    (a genuinely different result was published under the same key);
    ``recomputed`` — payload bytes differ (the cell was recomputed after
    eviction/quarantine) but the deterministic fingerprint matches, so
    the result is the same where the runtime promises byte-identity;
    counts as ok;
    ``unmanifested`` — grid cell (from an externally supplied spec list)
    with no leaf;
    ``root_ok`` — the recomputed Merkle root matches the sealed one.
    """

    root_ok: bool = True
    missing: list[str] = field(default_factory=list)
    corrupt: list[str] = field(default_factory=list)
    mismatched: list[str] = field(default_factory=list)
    recomputed: list[str] = field(default_factory=list)
    unmanifested: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.root_ok
            and not self.missing
            and not self.corrupt
            and not self.mismatched
            and not self.unmanifested
        )

    def summary(self) -> str:
        if self.ok:
            note = (
                f" ({len(self.recomputed)} recomputed, "
                "fingerprints match)"
                if self.recomputed
                else ""
            )
            return f"manifest verified: root ok, all artifacts intact{note}"
        parts: list[str] = []
        if not self.root_ok:
            parts.append("MERKLE ROOT MISMATCH (manifest tampered or torn)")
        for name, digests in (
            ("missing", self.missing),
            ("corrupt (quarantined)", self.corrupt),
            ("mismatched", self.mismatched),
            ("unmanifested", self.unmanifested),
        ):
            if digests:
                shown = ", ".join(sorted(digests)[:4])
                more = len(digests) - min(len(digests), 4)
                suffix = f" (+{more} more)" if more else ""
                parts.append(f"{len(digests)} {name}: {shown}{suffix}")
        return "; ".join(parts)


def _fingerprint_sha(cache: ArtifactCache, spec: JobSpec) -> str | None:
    """sha256 of the cached result's deterministic-field fingerprint.

    Forces a disk read (evicting the memory tier first) so the
    fingerprint attested is the one durably stored, not a stale
    in-process copy.  ``None`` when the entry is missing, corrupt, or
    not a :class:`~repro.runtime.spec.JobResult`.
    """
    key = spec.cache_key()
    cache.evict_memory(JOB_KIND, key)
    hit, value = cache.lookup(JOB_KIND, key)
    if not hit or not isinstance(value, JobResult):
        return None
    return hashlib.sha256(value.fingerprint().encode("utf-8")).hexdigest()


def _grid_meta(specs: Sequence[JobSpec]) -> dict[str, Any]:
    return {
        "cells": len(specs),
        "backends": sorted({s.backend for s in specs}),
        "apps": sorted({s.app for s in specs}),
        "graphs": sorted({s.graph_name for s in specs}),
        "scales": sorted({s.scale for s in specs}),
    }


def build_manifest(
    specs: Sequence[JobSpec], cache: ArtifactCache
) -> Manifest:
    """Bind every grid cell's artifact into a sealed manifest value.

    Read-only over the cache; raises :class:`ManifestError` naming the
    spec_digests of any cells whose artifacts are missing or fail
    verification — a manifest only ever attests to a *complete, intact*
    grid.  (Corrupt entries found here are quarantined as a side effect,
    so the fix is always: re-run the sweep, then seal again.)
    """
    leaves: list[dict[str, Any]] = []
    unsealable: list[str] = []
    for spec in specs:
        digest = spec_digest(spec)
        sha = cache.entry_checksum(JOB_KIND, spec.cache_key())
        if sha is None:
            unsealable.append(digest)
            continue
        fingerprint = _fingerprint_sha(cache, spec)
        if fingerprint is None:
            unsealable.append(digest)
            continue
        leaves.append(
            {
                "spec_digest": digest,
                "label": spec.label(),
                "cache_digest": cache.digest(spec.cache_key()),
                "artifact_sha256": sha,
                "fingerprint_sha256": fingerprint,
                "spec": asdict(spec),
            }
        )
    if unsealable:
        shown = ", ".join(sorted(unsealable)[:4])
        more = len(unsealable) - min(len(unsealable), 4)
        suffix = f" (+{more} more)" if more else ""
        raise ManifestError(
            f"cannot seal: {len(unsealable)} cell(s) have missing or "
            f"invalid artifacts: {shown}{suffix}; finish the sweep "
            "(or recompute quarantined cells) and seal again"
        )
    leaves.sort(key=lambda leaf: str(leaf["spec_digest"]))
    root = merkle_root([leaf_hash(leaf) for leaf in leaves])
    return Manifest(
        root=root, leaves=tuple(leaves), grid=_grid_meta(specs)
    )


def seal_manifest(
    path: str | Path, specs: Sequence[JobSpec], cache: ArtifactCache
) -> Manifest:
    """Build and atomically publish the manifest for ``specs``."""
    manifest = build_manifest(specs, cache)
    atomic_write_text(
        Path(path),
        json.dumps(manifest.as_dict(), sort_keys=True, indent=2) + "\n",
    )
    _log.info(
        "sealed manifest %s: %d leaves, root %s",
        path,
        len(manifest.leaves),
        manifest.root[:16],
    )
    return manifest


def load_manifest(path: str | Path) -> Manifest:
    """Parse a manifest file; reject unreadable or newer-versioned ones."""
    path = Path(path)
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"unreadable manifest {path}: {exc}") from exc
    if not isinstance(record, dict) or "leaves" not in record:
        raise ManifestError(f"{path} is not a manifest")
    declared = record.get("manifest_version")
    if isinstance(declared, int) and declared > MANIFEST_VERSION:
        raise ManifestError(
            f"manifest {path} was sealed by a newer runtime "
            f"(manifest_version {declared} > supported {MANIFEST_VERSION})"
        )
    leaves = record.get("leaves")
    if not isinstance(leaves, list) or not all(
        isinstance(leaf, dict) for leaf in leaves
    ):
        raise ManifestError(f"{path} has malformed leaves")
    return Manifest(
        root=str(record.get("root", "")),
        leaves=tuple(leaves),
        grid=dict(record.get("grid") or {}),
        manifest_version=(
            declared if isinstance(declared, int) else MANIFEST_VERSION
        ),
        cache_version=int(record.get("cache_version", CACHE_VERSION)),
    )


def verify_manifest(
    manifest: Manifest,
    cache: ArtifactCache,
    specs: Sequence[JobSpec] | None = None,
) -> VerifyReport:
    """Prove (or disprove) a sealed manifest against the live cache.

    Three checks, all reported by exact spec_digest:

    1. the Merkle root recomputed from the leaves must equal the sealed
       root (catches tampered/truncated manifest files);
    2. every leaf's artifact must exist, verify internally (corrupt ones
       are quarantined by the read itself), and hash to the manifested
       ``artifact_sha256`` (catches silently swapped results);
    3. with ``specs`` — the independently rebuilt grid — every cell must
       have a leaf (catches a manifest sealed over a partial sweep).
    """
    report = VerifyReport()
    report.root_ok = (
        merkle_root([leaf_hash(leaf) for leaf in manifest.leaves])
        == manifest.root
    )
    for leaf in manifest.leaves:
        digest = str(leaf.get("spec_digest", ""))
        try:
            spec = JobSpec(
                backend=str(leaf["spec"]["backend"]),
                app=str(leaf["spec"]["app"]),
                dataset=leaf["spec"].get("dataset"),
                scale=str(leaf["spec"].get("scale", "small")),
                graph_path=leaf["spec"].get("graph_path"),
                config=tuple(
                    (str(k), v) for k, v in leaf["spec"].get("config", ())
                ),
                params=tuple(
                    (str(k), v) for k, v in leaf["spec"].get("params", ())
                ),
                seed=int(leaf["spec"].get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError):
            report.mismatched.append(digest or "<unparseable leaf>")
            continue
        before = cache.stats.quarantined
        sha = cache.entry_checksum(JOB_KIND, spec.cache_key())
        if sha is None:
            if cache.stats.quarantined > before:
                report.corrupt.append(digest)
            else:
                report.missing.append(digest)
        elif sha != leaf.get("artifact_sha256"):
            # Byte layer differs — the cell was republished (e.g.
            # recomputed after quarantine).  Fall back to the semantic
            # layer: matching deterministic fingerprints mean the same
            # result, which is exactly what the manifest attests.
            if (
                _fingerprint_sha(cache, spec)
                == leaf.get("fingerprint_sha256")
            ):
                report.recomputed.append(digest)
            else:
                report.mismatched.append(digest)
    if specs is not None:
        manifested = manifest.spec_digests()
        for spec in specs:
            digest = spec_digest(spec)
            if digest not in manifested:
                report.unmanifested.append(digest)
    if report.ok:
        _log.info("manifest verified: %d leaves intact", len(manifest.leaves))
    else:
        _log.warning("manifest verification failed: %s", report.summary())
    return report
