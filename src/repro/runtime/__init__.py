"""Unified execution runtime: backends, job executor, artifact cache.

Every way of running a mining workload — the CLI, the experiment harness,
``run_all`` sweeps — goes through this layer:

* :class:`~repro.runtime.spec.JobSpec` / :class:`~repro.runtime.spec.JobResult`
  — the declarative unit of work and its complete outcome;
* :mod:`~repro.runtime.backends` — the ``Backend`` registry wrapping the
  software engine, the GRAMER cycle simulator, and the Fractal/RStream
  baseline models behind one ``run(JobSpec) -> JobResult`` interface;
* :class:`~repro.runtime.executor.Executor` — inline or process-pool
  fan-out with per-job failure capture, retry rounds, and deterministic
  ordering;
* :mod:`~repro.runtime.cache` — the content-addressed artifact cache
  memoizing proxy graphs, ON1 rankings, and completed job results, with
  checksum-verified disk entries and quarantine on corruption;
* :mod:`~repro.runtime.retry` — transient/permanent error classification
  and deterministic seeded backoff;
* :mod:`~repro.runtime.ledger` — the crash-safe JSONL run journal behind
  ``gramer sweep --resume``, versioned headers, and the claim audit trail;
* :mod:`~repro.runtime.atomicio` — the blessed atomic-write primitives
  (tmp+fsync+rename publish, ``O_EXCL`` claim creation) every durable
  file in the runtime goes through (``gramer check`` GRM802 enforces it);
* :mod:`~repro.runtime.claims` / :mod:`~repro.runtime.worker` — the
  distributed sweep layer: lease-based cell claims with expired-lease
  takeover, and the ``gramer worker`` loop that shards one grid across
  N coordinating processes;
* :mod:`~repro.runtime.manifest` — Merkle-manifested sweep artifacts:
  seal a completed grid into one verifiable JSON commitment, verify
  completeness and integrity later by exact spec_digest;
* :mod:`~repro.runtime.chaos` — the fault-injection harness proving the
  recovery paths (``GRAMER_FAULTS``, ``Executor(faults=...)``).

See ``docs/resilience.md`` for the recovery model end to end.
"""

from .atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    exclusive_create_text,
    fsync_directory,
)
from .backends import (
    Backend,
    backend_names,
    build_app,
    cached_vertex_rank,
    experiment_config,
    get_backend,
    register_backend,
)
from .cache import (
    JOB_KIND,
    ArtifactCache,
    default_cache,
    reset_default_cache,
    stable_hash,
)
from .chaos import (
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    claim_race_delay_s,
    lease_expiry_stall_s,
    parse_fault_plan,
)
from .claims import Claim, ClaimStore, claim_backoff_s
from .executor import Executor, resolve_jobs, run_spec
from .ledger import (
    LEDGER_VERSION,
    ClaimRecord,
    LedgerVersionError,
    RunLedger,
    load_ledger,
    spec_digest,
)
from .manifest import (
    Manifest,
    ManifestError,
    VerifyReport,
    build_manifest,
    load_manifest,
    seal_manifest,
    verify_manifest,
)
from .retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy, classify_error
from .spec import JobResult, JobSpec, failed_result, make_jobspec
from .worker import SweepWorker, WorkerSummary

__all__ = [
    "ArtifactCache",
    "Backend",
    "Claim",
    "ClaimRecord",
    "ClaimStore",
    "DEFAULT_RETRY",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "JOB_KIND",
    "JobResult",
    "JobSpec",
    "LEDGER_VERSION",
    "LedgerVersionError",
    "Manifest",
    "ManifestError",
    "NO_RETRY",
    "RetryPolicy",
    "RunLedger",
    "SweepWorker",
    "VerifyReport",
    "WorkerSummary",
    "atomic_write_bytes",
    "atomic_write_text",
    "backend_names",
    "build_app",
    "build_manifest",
    "cached_vertex_rank",
    "claim_backoff_s",
    "claim_race_delay_s",
    "classify_error",
    "default_cache",
    "exclusive_create_text",
    "experiment_config",
    "failed_result",
    "fsync_directory",
    "get_backend",
    "lease_expiry_stall_s",
    "load_ledger",
    "load_manifest",
    "make_jobspec",
    "parse_fault_plan",
    "register_backend",
    "reset_default_cache",
    "resolve_jobs",
    "run_spec",
    "seal_manifest",
    "spec_digest",
    "stable_hash",
    "verify_manifest",
]
