"""Unified execution runtime: backends, job executor, artifact cache.

Every way of running a mining workload — the CLI, the experiment harness,
``run_all`` sweeps — goes through this layer:

* :class:`~repro.runtime.spec.JobSpec` / :class:`~repro.runtime.spec.JobResult`
  — the declarative unit of work and its complete outcome;
* :mod:`~repro.runtime.backends` — the ``Backend`` registry wrapping the
  software engine, the GRAMER cycle simulator, and the Fractal/RStream
  baseline models behind one ``run(JobSpec) -> JobResult`` interface;
* :class:`~repro.runtime.executor.Executor` — inline or process-pool
  fan-out with per-job failure capture and deterministic ordering;
* :mod:`~repro.runtime.cache` — the content-addressed artifact cache
  memoizing proxy graphs, ON1 rankings, and completed job results.
"""

from .backends import (
    Backend,
    backend_names,
    build_app,
    cached_vertex_rank,
    experiment_config,
    get_backend,
    register_backend,
)
from .cache import ArtifactCache, default_cache, reset_default_cache, stable_hash
from .executor import Executor, resolve_jobs, run_spec
from .spec import JobResult, JobSpec, failed_result, make_jobspec

__all__ = [
    "ArtifactCache",
    "Backend",
    "Executor",
    "JobResult",
    "JobSpec",
    "backend_names",
    "build_app",
    "cached_vertex_rank",
    "default_cache",
    "experiment_config",
    "failed_result",
    "get_backend",
    "make_jobspec",
    "register_backend",
    "reset_default_cache",
    "resolve_jobs",
    "run_spec",
    "stable_hash",
]
