"""Unified execution runtime: backends, job executor, artifact cache.

Every way of running a mining workload — the CLI, the experiment harness,
``run_all`` sweeps — goes through this layer:

* :class:`~repro.runtime.spec.JobSpec` / :class:`~repro.runtime.spec.JobResult`
  — the declarative unit of work and its complete outcome;
* :mod:`~repro.runtime.backends` — the ``Backend`` registry wrapping the
  software engine, the GRAMER cycle simulator, and the Fractal/RStream
  baseline models behind one ``run(JobSpec) -> JobResult`` interface;
* :class:`~repro.runtime.executor.Executor` — inline or process-pool
  fan-out with per-job failure capture, retry rounds, and deterministic
  ordering;
* :mod:`~repro.runtime.cache` — the content-addressed artifact cache
  memoizing proxy graphs, ON1 rankings, and completed job results, with
  checksum-verified disk entries and quarantine on corruption;
* :mod:`~repro.runtime.retry` — transient/permanent error classification
  and deterministic seeded backoff;
* :mod:`~repro.runtime.ledger` — the crash-safe JSONL run journal behind
  ``gramer sweep --resume``;
* :mod:`~repro.runtime.chaos` — the fault-injection harness proving the
  recovery paths (``GRAMER_FAULTS``, ``Executor(faults=...)``).

See ``docs/resilience.md`` for the recovery model end to end.
"""

from .backends import (
    Backend,
    backend_names,
    build_app,
    cached_vertex_rank,
    experiment_config,
    get_backend,
    register_backend,
)
from .cache import ArtifactCache, default_cache, reset_default_cache, stable_hash
from .chaos import FaultPlan, FaultSpec, InjectedFaultError, parse_fault_plan
from .executor import Executor, resolve_jobs, run_spec
from .ledger import RunLedger, load_ledger, spec_digest
from .retry import DEFAULT_RETRY, NO_RETRY, RetryPolicy, classify_error
from .spec import JobResult, JobSpec, failed_result, make_jobspec

__all__ = [
    "ArtifactCache",
    "Backend",
    "DEFAULT_RETRY",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "JobResult",
    "JobSpec",
    "NO_RETRY",
    "RetryPolicy",
    "RunLedger",
    "backend_names",
    "build_app",
    "cached_vertex_rank",
    "classify_error",
    "default_cache",
    "experiment_config",
    "failed_result",
    "get_backend",
    "load_ledger",
    "make_jobspec",
    "parse_fault_plan",
    "register_backend",
    "reset_default_cache",
    "resolve_jobs",
    "run_spec",
    "spec_digest",
    "stable_hash",
]
