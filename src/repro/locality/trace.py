"""Memory-trace capture.

These are :class:`~repro.mining.engine.MemoryModel` implementations that
record instead of cost.  The paper's motivation studies ("we trace all
memory requests in each iteration, and then rank each vertex and edge
according to the number of their memory requests", footnote 1) are built on
:class:`IterationTrace`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["AccessCounter", "IterationTrace", "CallbackMemory"]


class AccessCounter:
    """Flat access totals (no per-iteration split)."""

    __slots__ = ("depth", "vertex_counts", "edge_counts")

    def __init__(self) -> None:
        self.depth = 0
        self.vertex_counts: Counter[int] = Counter()
        self.edge_counts: Counter[int] = Counter()

    def vertex(self, vid: int) -> None:
        self.vertex_counts[vid] += 1

    def edge(self, index: int, src: int) -> None:
        self.edge_counts[index] += 1

    @property
    def total_vertex_accesses(self) -> int:
        """Total vertex accesses recorded."""
        return sum(self.vertex_counts.values())

    @property
    def total_edge_accesses(self) -> int:
        """Total edge accesses recorded."""
        return sum(self.edge_counts.values())


@dataclass
class _IterationBucket:
    vertex_counts: Counter[int] = field(default_factory=Counter)
    edge_counts: Counter[int] = field(default_factory=Counter)


class IterationTrace:
    """Per-iteration access counters keyed by embedding size.

    ``depth`` (set by the engine) is the size of the embedding being
    extended, which equals the paper's iteration number: iteration ``i``
    extends ``i``-vertex embeddings into ``(i+1)``-vertex ones.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.buckets: dict[int, _IterationBucket] = {}

    def _bucket(self) -> _IterationBucket:
        bucket = self.buckets.get(self.depth)
        if bucket is None:
            bucket = _IterationBucket()
            self.buckets[self.depth] = bucket
        return bucket

    def vertex(self, vid: int) -> None:
        self._bucket().vertex_counts[vid] += 1

    def edge(self, index: int, src: int) -> None:
        self._bucket().edge_counts[index] += 1

    @property
    def iterations(self) -> list[int]:
        """Iteration numbers observed, ascending."""
        return sorted(self.buckets)

    def vertex_counts(self, iteration: int) -> Counter[int]:
        """Vertex access counts for one iteration."""
        return self.buckets[iteration].vertex_counts

    def edge_counts(self, iteration: int) -> Counter[int]:
        """Edge-slot access counts for one iteration."""
        return self.buckets[iteration].edge_counts


class CallbackMemory:
    """Adapter forwarding engine events to callables (used by the sim glue)."""

    __slots__ = ("depth", "_on_vertex", "_on_edge")

    def __init__(
        self,
        on_vertex: Callable[[int], None],
        on_edge: Callable[[int, int], None],
    ) -> None:
        self.depth = 0
        self._on_vertex = on_vertex
        self._on_edge = on_edge

    def vertex(self, vid: int) -> None:
        self._on_vertex(vid)

    def edge(self, index: int, src: int) -> None:
        self._on_edge(index, src)
