"""Extension-locality characterization: ON heuristic, traces, analyses."""

from .analysis import (
    LocalityCurve,
    heuristic_accuracy,
    locality_curve,
    top_access_share,
)
from .occurrence import (
    OccurrenceTiming,
    edge_scores_from_vertex_scores,
    occurrence_numbers,
    timed_occurrence_numbers,
    top_fraction_vertices,
)
from .stride import AccessMix, StrideClassifier
from .trace import AccessCounter, CallbackMemory, IterationTrace

__all__ = [
    "LocalityCurve",
    "heuristic_accuracy",
    "locality_curve",
    "top_access_share",
    "OccurrenceTiming",
    "edge_scores_from_vertex_scores",
    "occurrence_numbers",
    "timed_occurrence_numbers",
    "top_fraction_vertices",
    "AccessMix",
    "StrideClassifier",
    "AccessCounter",
    "CallbackMemory",
    "IterationTrace",
]
