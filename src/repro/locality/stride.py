"""Stride-based access classification.

§II-B's argument is about *where the random accesses fall*: graph
processing randomises (mostly) the vertex dimension while streaming edges;
graph mining randomises both.  This adapter classifies each access by its
address stride — an edge access is *sequential* when it continues the
previous slot of the same adjacency stream (``index == last+1`` for that
source vertex), a vertex access is sequential when IDs ascend by one
(frontier sweeps) — and counts the four buckets the comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessMix", "StrideClassifier"]


@dataclass
class AccessMix:
    """Counts of (dimension × randomness) access classes."""

    sequential_vertex: int = 0
    random_vertex: int = 0
    sequential_edge: int = 0
    random_edge: int = 0

    @property
    def total(self) -> int:
        """All classified accesses."""
        return (
            self.sequential_vertex
            + self.random_vertex
            + self.sequential_edge
            + self.random_edge
        )

    def fractions(self) -> dict[str, float]:
        """Shares of each class (empty mix -> all zeros)."""
        total = self.total
        if total == 0:
            return {
                "sequential_vertex": 0.0,
                "random_vertex": 0.0,
                "sequential_edge": 0.0,
                "random_edge": 0.0,
            }
        return {
            "sequential_vertex": self.sequential_vertex / total,
            "random_vertex": self.random_vertex / total,
            "sequential_edge": self.sequential_edge / total,
            "random_edge": self.random_edge / total,
        }

    @property
    def random_vertex_share(self) -> float:
        """Random vertex accesses / all vertex accesses."""
        denom = self.sequential_vertex + self.random_vertex
        return self.random_vertex / denom if denom else 0.0

    @property
    def random_edge_share(self) -> float:
        """Random edge accesses / all edge accesses."""
        denom = self.sequential_edge + self.random_edge
        return self.random_edge / denom if denom else 0.0


class StrideClassifier:
    """MemoryModel adapter that buckets accesses by stride."""

    def __init__(self) -> None:
        self.depth = 0
        self.mix = AccessMix()
        self._last_vertex: int | None = None
        self._last_edge_by_src: dict[int, int] = {}

    def vertex(self, vid: int) -> None:
        if self._last_vertex is not None and vid == self._last_vertex + 1:
            self.mix.sequential_vertex += 1
        else:
            self.mix.random_vertex += 1
        self._last_vertex = vid

    def edge(self, index: int, src: int) -> None:
        last = self._last_edge_by_src.get(src)
        if last is not None and index == last + 1:
            self.mix.sequential_edge += 1
        else:
            self.mix.random_edge += 1
        self._last_edge_by_src[src] = index
