"""Extension-locality analyses (paper §II-D, Figs. 5 and 8a).

Given an :class:`~repro.locality.trace.IterationTrace`, these functions
answer the two questions the motivation study asks:

* what share of accesses hit the top-x% most-accessed vertices/edges in each
  iteration (Fig. 5), and
* how accurately does the ON_k heuristic predict that observed top set
  (Fig. 8a: "the proportion of vertices that can fall in the ideal 5% top
  vertex set").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

from .occurrence import (
    edge_scores_from_vertex_scores,
    occurrence_numbers,
    top_fraction_vertices,
)
from .trace import IterationTrace

__all__ = [
    "top_access_share",
    "locality_curve",
    "LocalityCurve",
    "heuristic_accuracy",
]


def top_access_share(counts: Counter[int], population: int, fraction: float) -> float:
    """Share of accesses going to the top-``fraction`` of the *population*.

    ``population`` is the total number of addressable items (all vertices or
    all edge slots), not just the accessed ones — an item with zero accesses
    still occupies a slot in the ranking, exactly as in the paper's offline
    ranking study.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if population <= 0:
        raise ValueError("population must be positive")
    total = sum(counts.values())
    if total == 0:
        return 0.0
    k = max(1, int(round(fraction * population)))
    top = sorted(counts.values(), reverse=True)[:k]
    return sum(top) / total


@dataclass(frozen=True)
class LocalityCurve:
    """Fig. 5 series for one graph: access share per iteration."""

    fraction: float
    vertex_share_by_iteration: dict[int, float]
    edge_share_by_iteration: dict[int, float]


def locality_curve(
    graph: CSRGraph, trace: IterationTrace, fraction: float = 0.05
) -> LocalityCurve:
    """Per-iteration top-``fraction`` access shares for vertices and edges."""
    vertex_share = {
        iteration: top_access_share(
            trace.vertex_counts(iteration), graph.num_vertices, fraction
        )
        for iteration in trace.iterations
    }
    edge_share = {
        iteration: top_access_share(
            trace.edge_counts(iteration), len(graph.neighbors), fraction
        )
        for iteration in trace.iterations
    }
    return LocalityCurve(
        fraction=fraction,
        vertex_share_by_iteration=vertex_share,
        edge_share_by_iteration=edge_share,
    )


def _observed_top_vertices(
    counts: Counter[int], population: int, fraction: float
) -> set[int]:
    k = max(1, int(round(fraction * population)))
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return set(v for v, _count in ranked[:k])


def heuristic_accuracy(
    graph: CSRGraph,
    trace: IterationTrace,
    hops: int,
    fraction: float = 0.05,
) -> dict[int, float]:
    """Fig. 8a: per-iteration overlap of predicted vs observed top sets.

    Returns ``iteration -> |predicted ∩ observed| / |observed|`` where
    *predicted* is the ON_hops top-``fraction`` vertex set and *observed* is
    the traced top-``fraction`` set of that iteration.
    """
    scores = occurrence_numbers(graph, hops)
    predicted = top_fraction_vertices(scores, fraction)
    accuracy: dict[int, float] = {}
    for iteration in trace.iterations:
        observed = _observed_top_vertices(
            trace.vertex_counts(iteration), graph.num_vertices, fraction
        )
        if not observed:
            continue
        accuracy[iteration] = len(predicted & observed) / len(observed)
    return accuracy


def edge_priority_scores(graph: CSRGraph, hops: int = 1) -> np.ndarray:
    """Convenience: per-edge-slot ON scores (``ON(edge) = ON(v_src)``)."""
    return edge_scores_from_vertex_scores(graph, occurrence_numbers(graph, hops))
