"""Occurrence-number (ON) heuristic — paper §IV-B, Equation (1).

The high-priority memory must know *which* data will be hot before the run
starts.  Equation (1) estimates the occurrence number of a vertex ``v`` at
hop depth ``k`` as::

    ON_k(v) = prod_{dist=0..k}  sum_{v' in nghbr(dist, v)} Deg(v')

i.e. the product over distances of the total degree mass at that distance.
``ON_0`` is just the degree; ``ON_1`` multiplies in the 1-hop neighbours'
degree sum and is the paper's chosen cost/accuracy sweet spot (Fig. 8).
Edge priority inherits from the source vertex: ``ON1(edge) = ON1(v_src)``.

The constant factor ``c`` of Eq. (1) scales all vertices equally and so
never changes the *ranking*, which is all GRAMER consumes; it is omitted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "occurrence_numbers",
    "OccurrenceTiming",
    "timed_occurrence_numbers",
    "top_fraction_vertices",
    "edge_scores_from_vertex_scores",
]


def _distance_degree_sums(graph: CSRGraph, source: int, max_dist: int) -> list[float]:
    """``sum(Deg(v'))`` over vertices at exact BFS distance 0..max_dist."""
    offsets = graph.offsets
    neighbors = graph.neighbors
    sums: list[float] = []
    visited = {source}
    frontier = [source]
    for _dist in range(max_dist + 1):
        if not frontier:
            sums.append(0.0)
            continue
        sums.append(
            float(sum(int(offsets[v + 1] - offsets[v]) for v in frontier))
        )
        nxt: list[int] = []
        for v in frontier:
            for u in neighbors[offsets[v] : offsets[v + 1]].tolist():
                if u not in visited:
                    visited.add(u)
                    nxt.append(u)
        frontier = nxt
    return sums


def occurrence_numbers(graph: CSRGraph, hops: int = 1) -> np.ndarray:
    """``ON_hops`` score per vertex (Equation 1, constant ``c`` dropped).

    ``hops = 0`` reduces to plain degree; ``hops = 1`` is the production
    heuristic.  The 1-hop case is computed with one vectorised
    gather-reduce; deeper hops run per-vertex BFS, whose rapidly growing
    cost is itself the subject of Fig. 8(b).
    """
    if hops < 0:
        raise ValueError("hops must be >= 0")
    degrees = graph.degrees().astype(np.float64)
    if hops == 0:
        return degrees
    if hops == 1:
        neighbor_degree_sum = np.zeros(graph.num_vertices, dtype=np.float64)
        # Sum neighbour degrees per vertex: gather degrees at neighbor IDs and
        # reduce per CSR slice.
        gathered = degrees[graph.neighbors]
        cumulative = np.concatenate(([0.0], np.cumsum(gathered)))
        neighbor_degree_sum = cumulative[graph.offsets[1:]] - cumulative[
            graph.offsets[:-1]
        ]
        return degrees * neighbor_degree_sum
    scores = np.zeros(graph.num_vertices, dtype=np.float64)
    for v in range(graph.num_vertices):
        product = 1.0
        for value in _distance_degree_sums(graph, v, hops):
            product *= value
        scores[v] = product
    return scores


@dataclass(frozen=True)
class OccurrenceTiming:
    """ON computation output with its wall-clock cost (Fig. 8b / Fig. 11b)."""

    scores: np.ndarray
    hops: int
    seconds: float


def timed_occurrence_numbers(graph: CSRGraph, hops: int) -> OccurrenceTiming:
    """Compute ``ON_hops`` and record its wall-clock time."""
    start = time.perf_counter()
    scores = occurrence_numbers(graph, hops)
    return OccurrenceTiming(
        scores=scores, hops=hops, seconds=time.perf_counter() - start
    )


def top_fraction_vertices(scores: np.ndarray, fraction: float) -> set[int]:
    """The top-``fraction`` vertex IDs by score (ties broken by ID)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    count = max(1, int(round(fraction * len(scores))))
    order = np.lexsort((np.arange(len(scores)), -scores))
    return set(int(v) for v in order[:count])


def edge_scores_from_vertex_scores(
    graph: CSRGraph, vertex_scores: np.ndarray
) -> np.ndarray:
    """Per-edge-slot score: ``ON(edge) = ON(v_src)`` (§IV-B).

    Indexed like ``graph.neighbors``: slot ``i`` belongs to the source vertex
    whose CSR slice contains ``i``.
    """
    scores = np.empty(len(graph.neighbors), dtype=np.float64)
    for v in range(graph.num_vertices):
        scores[graph.offsets[v] : graph.offsets[v + 1]] = vertex_scores[v]
    return scores
