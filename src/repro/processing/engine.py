"""Vertex-centric graph processing engine.

The paper's motivation (§II-B, Fig. 2) contrasts graph *mining* against
graph *processing* — the BFS/CC/PageRank class served by prior accelerators
[11, 17, 31, 44, 46], programmed in the vertex-centric model of Pregel [29]:
each active vertex reads its neighbours' values, computes, and writes its
own.  Random accesses land (almost) only on the *vertex value* array; edges
are streamed sequentially per active vertex.

This module implements that model so the repository can quantify the
contrast on identical graphs with identical instrumentation: the engine
charges the same :class:`~repro.mining.engine.MemoryModel` protocol as the
mining engine (``vertex`` = one vertex-value access, ``edge`` = one
adjacency-slot read), so the same trace classifiers and CPU timing model
apply to both workload classes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.mining.engine import MemoryModel, NullMemory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["VertexProgram", "run_vertex_program", "IterationLimitError"]


class IterationLimitError(RuntimeError):
    """A program failed to converge within ``max_iterations``."""


class VertexProgram(Protocol):
    """One vertex-centric application (Pregel-style).

    The engine drives::

        values = program.initial_values(graph)
        per superstep, for each active vertex u:
            for each neighbour v of u (streamed):
                accumulate program.gather(values[u], values[v], u, v)
            new = program.apply(u, values[u], accumulated)
            if new != values[u]: activate u's neighbours next superstep

    ``None`` from :meth:`gather`'s accumulation start means "no messages".
    """

    name: str

    def initial_values(self, graph: "CSRGraph") -> list:
        """Per-vertex initial values (also defines the active frontier)."""

    def initial_frontier(self, graph: "CSRGraph") -> list[int]:
        """Vertices active in the first superstep."""

    def gather(self, accumulator, neighbor_value, u: int, v: int):
        """Fold one neighbour's value into the accumulator."""

    def apply(self, vertex: int, old_value, accumulator):
        """New value for ``vertex`` (return ``old_value`` for no change)."""

    def converged(self, old_value, new_value) -> bool:
        """Whether the update is insignificant (vertex deactivates)."""


def run_vertex_program(
    graph: "CSRGraph",
    program: VertexProgram,
    mem: MemoryModel | None = None,
    max_iterations: int = 10_000,
) -> tuple[list, int]:
    """Run ``program`` to convergence; returns (values, supersteps).

    Memory charging follows Fig. 2(a): processing an active vertex costs a
    random access to its own value, a sequential streaming of its adjacency
    slice, and a random access to each neighbour's value.
    """
    mem = mem if mem is not None else NullMemory()
    values = program.initial_values(graph)
    if len(values) != graph.num_vertices:
        raise ValueError("initial_values must supply one value per vertex")
    frontier = sorted(set(program.initial_frontier(graph)))
    offsets = graph.offsets
    neighbors = graph.neighbors

    supersteps = 0
    while frontier:
        supersteps += 1
        if supersteps > max_iterations:
            raise IterationLimitError(
                f"{program.name} did not converge within {max_iterations} "
                "supersteps"
            )
        mem.depth = supersteps
        next_frontier: set[int] = set()
        updates: list[tuple[int, object]] = []
        for u in frontier:
            mem.vertex(u)  # random access on the active vertex (Fig. 2a)
            accumulator = None
            lo, hi = int(offsets[u]), int(offsets[u + 1])
            for index in range(lo, hi):
                mem.edge(index, u)  # sequential edge streaming
                v = int(neighbors[index])
                mem.vertex(v)  # random access on the neighbour's value
                accumulator = program.gather(accumulator, values[v], u, v)
            new_value = program.apply(u, values[u], accumulator)
            if not program.converged(values[u], new_value):
                updates.append((u, new_value))
                for index in range(lo, hi):
                    next_frontier.add(int(neighbors[index]))
        for u, new_value in updates:
            values[u] = new_value
        frontier = sorted(next_frontier)
    return values, supersteps
