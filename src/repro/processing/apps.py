"""Vertex-centric applications: BFS, SSSP, connected components, PageRank.

The representative graph-processing workloads the paper names when
contrasting prior accelerators with graph mining (§I: "BFS, CC, and
PageRank").  All are *pull*-style: an active vertex recomputes its value
from its neighbours' values, so the initial frontier is the set of vertices
whose inputs changed at initialisation (e.g. the source's neighbours for
BFS).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = [
    "BreadthFirstSearch",
    "SingleSourceShortestPaths",
    "ConnectedComponents",
    "PageRank",
]

INFINITY = math.inf


class BreadthFirstSearch:
    """Unweighted hop distance from a source vertex."""

    name = "BFS"

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_values(self, graph: "CSRGraph") -> list:
        values = [INFINITY] * graph.num_vertices
        values[self.source] = 0
        return values

    def initial_frontier(self, graph: "CSRGraph") -> list[int]:
        return [int(v) for v in graph.neighbors_of(self.source)]

    def gather(self, accumulator, neighbor_value, u, v):
        candidate = neighbor_value + 1
        return candidate if accumulator is None else min(accumulator, candidate)

    def apply(self, vertex, old_value, accumulator):
        if accumulator is None:
            return old_value
        return min(old_value, accumulator)

    def converged(self, old_value, new_value) -> bool:
        return new_value == old_value


class SingleSourceShortestPaths(BreadthFirstSearch):
    """Weighted shortest paths; weights derived per edge via ``weight_fn``.

    The CSR stores no weights, so a deterministic function of the endpoint
    IDs supplies them (defaults to ``1 + (u + v) % 4``, strictly positive).
    """

    name = "SSSP"

    def __init__(self, source: int, weight_fn=None) -> None:
        super().__init__(source)
        self.weight_fn = weight_fn or (lambda u, v: 1 + (u + v) % 4)

    def gather(self, accumulator, neighbor_value, u, v):
        candidate = neighbor_value + self.weight_fn(u, v)
        return candidate if accumulator is None else min(accumulator, candidate)


class ConnectedComponents:
    """Label propagation: every vertex ends with its component's min ID."""

    name = "CC"

    def initial_values(self, graph: "CSRGraph") -> list:
        return list(range(graph.num_vertices))

    def initial_frontier(self, graph: "CSRGraph") -> list[int]:
        return list(range(graph.num_vertices))

    def gather(self, accumulator, neighbor_value, u, v):
        return (
            neighbor_value
            if accumulator is None
            else min(accumulator, neighbor_value)
        )

    def apply(self, vertex, old_value, accumulator):
        if accumulator is None:
            return old_value
        return min(old_value, accumulator)

    def converged(self, old_value, new_value) -> bool:
        return new_value == old_value


class PageRank:
    """Standard damped PageRank over the undirected graph.

    A vertex's value is ``(rank, degree)``-free: we store the rank and pull
    ``rank(v) / deg(v)`` from each neighbour.  Convergence when the rank
    moves less than ``tolerance``.
    """

    name = "PageRank"

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-4) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self.tolerance = tolerance
        self._degrees = None
        self._n = 0

    def initial_values(self, graph: "CSRGraph") -> list:
        self._degrees = graph.degrees()
        self._n = graph.num_vertices
        return [1.0 / max(1, graph.num_vertices)] * graph.num_vertices

    def initial_frontier(self, graph: "CSRGraph") -> list[int]:
        return list(range(graph.num_vertices))

    def gather(self, accumulator, neighbor_value, u, v):
        share = neighbor_value / max(1, int(self._degrees[v]))
        return share if accumulator is None else accumulator + share

    def apply(self, vertex, old_value, accumulator):
        incoming = accumulator if accumulator is not None else 0.0
        return (1.0 - self.damping) / self._n + self.damping * incoming

    def converged(self, old_value, new_value) -> bool:
        return abs(new_value - old_value) < self.tolerance
