"""Vertex-centric graph processing (the paper's §II-B contrast class)."""

from .apps import (
    BreadthFirstSearch,
    ConnectedComponents,
    PageRank,
    SingleSourceShortestPaths,
)
from .engine import IterationLimitError, VertexProgram, run_vertex_program

__all__ = [
    "BreadthFirstSearch",
    "ConnectedComponents",
    "PageRank",
    "SingleSourceShortestPaths",
    "IterationLimitError",
    "VertexProgram",
    "run_vertex_program",
]
