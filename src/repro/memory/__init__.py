"""Memory substrate: caches, policies, scratchpad, LAMH, DRAM, disk."""

from .cache import CacheStats, SetAssociativeCache
from .dram import DRAMModel
from .disk import DiskModel, OutOfDiskError
from .hierarchy import (
    AccessLevel,
    LocalityAwareHierarchy,
    MemorySide,
    SideStats,
    build_hierarchy,
    default_tau,
    edge_cutoff_rank,
)
from .policies import (
    FIFOPolicy,
    LineState,
    LocalityPreservedPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
)
from .scratchpad import Scratchpad

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "DRAMModel",
    "DiskModel",
    "OutOfDiskError",
    "AccessLevel",
    "LocalityAwareHierarchy",
    "MemorySide",
    "SideStats",
    "build_hierarchy",
    "default_tau",
    "edge_cutoff_rank",
    "FIFOPolicy",
    "LineState",
    "LocalityPreservedPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "Scratchpad",
]
