"""SSD/disk traffic model for the RStream baseline.

RStream "stores the intermediate embeddings in SSD" (§VII) and its
characteristic cost is streaming every materialised frontier out and back in
(§V-A).  The model charges sequential-streaming time per byte plus a
per-batch latency, and enforces a capacity after which the run fails — the
paper's *'N/A': the system runs out of the disk* cells.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskModel", "OutOfDiskError"]


class OutOfDiskError(RuntimeError):
    """Raised when cumulative resident bytes exceed the disk capacity."""


@dataclass
class DiskModel:
    """Streaming SSD model (defaults ~ a SATA SSD like the paper's 1TB)."""

    write_bandwidth_bytes_per_s: float = 500e6
    read_bandwidth_bytes_per_s: float = 550e6
    batch_latency_s: float = 100e-6
    capacity_bytes: int = 10**12
    bytes_written: int = 0
    bytes_read: int = 0
    seconds: float = 0.0
    resident_bytes: int = 0

    def write(self, num_bytes: int) -> float:
        """Stream ``num_bytes`` out; returns the time charged."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        self.resident_bytes += num_bytes
        if self.resident_bytes > self.capacity_bytes:
            raise OutOfDiskError(
                f"{self.resident_bytes} resident bytes exceed capacity "
                f"{self.capacity_bytes}"
            )
        cost = num_bytes / self.write_bandwidth_bytes_per_s + (
            self.batch_latency_s if num_bytes else 0.0
        )
        self.bytes_written += num_bytes
        self.seconds += cost
        return cost

    def read(self, num_bytes: int) -> float:
        """Stream ``num_bytes`` back in; returns the time charged."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        cost = num_bytes / self.read_bandwidth_bytes_per_s + (
            self.batch_latency_s if num_bytes else 0.0
        )
        self.bytes_read += num_bytes
        self.seconds += cost
        return cost

    def free(self, num_bytes: int) -> None:
        """Release ``num_bytes`` of resident intermediate data."""
        self.resident_bytes = max(0, self.resident_bytes - num_bytes)
