"""Set-associative cache model.

Functional (hit/miss) model used for the low-priority memory of the LAMH
(§IV-C), for the uniform-cache baseline of Fig. 12, and — with multiple
levels stacked — for the CPU cache hierarchy of the Fractal/RStream
baselines.  Timing is layered on top by the simulators; this module only
answers "would this access hit?" and keeps exact counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .policies import LineState, LRUPolicy, ReplacementPolicy

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "SetAssociativeCache"]


@dataclass
class CacheStats:
    """Exact access accounting for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over accesses (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = self.hits = self.misses = self.evictions = 0


class SetAssociativeCache:
    """A ``num_sets`` × ``ways`` cache over integer addresses.

    ``line_size`` addresses share a line (power of two not required); the
    tag is ``address // line_size``.  Each line carries a ``rank`` supplied
    by the caller at access time so rank-aware policies (Equation 2) can
    score victims without any reverse mapping.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        line_size: int = 1,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        if num_sets < 1 or ways < 1 or line_size < 1:
            raise ValueError("num_sets, ways, line_size must all be >= 1")
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = CacheStats()
        # Optional fill observer (repro.obs.hooks attaches one for
        # access-traced runs): called with (tag, rank) after a miss
        # installs its line.  Purely observational.
        self.fill_observer = None
        self._sets = [
            [LineState() for _ in range(ways)] for _ in range(num_sets)
        ]
        self._set_evictions = [0] * num_sets
        self._clock = 0

    @property
    def capacity_entries(self) -> int:
        """Total data entries the cache can hold."""
        return self.num_sets * self.ways * self.line_size

    def _locate(self, address: int) -> tuple[int, int]:
        tag = address // self.line_size
        return tag % self.num_sets, tag

    def access(self, address: int, rank: int = 0) -> bool:
        """Access ``address``; returns ``True`` on hit, filling on miss."""
        self._clock += 1
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        lines = self._sets[set_index]
        for line in lines:
            if line.valid and line.tag == tag:
                line.last_access = self._clock
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        self._fill(set_index, lines, tag, rank)
        return False

    def probe(self, address: int) -> bool:
        """Whether ``address`` is resident, without touching any state."""
        set_index, tag = self._locate(address)
        return any(
            line.valid and line.tag == tag for line in self._sets[set_index]
        )

    def _fill(
        self, set_index: int, lines: list[LineState], tag: int, rank: int
    ) -> None:
        for line in lines:
            if not line.valid:
                self._install(line, tag, rank)
                if self.fill_observer is not None:
                    self.fill_observer(tag, rank)
                return
        way = self.policy.victim(lines, self._clock)
        if not 0 <= way < self.ways:
            raise ValueError(
                f"policy {self.policy.name!r} returned invalid way {way}"
            )
        self.stats.evictions += 1
        self._set_evictions[set_index] += 1
        self._install(lines[way], tag, rank)
        if self.fill_observer is not None:
            self.fill_observer(tag, rank)

    def _install(self, line: LineState, tag: int, rank: int) -> None:
        line.valid = True
        line.tag = tag
        line.rank = rank
        line.last_access = self._clock
        line.fill_seq = self._clock

    def set_eviction_counts(self) -> list[int]:
        """Evictions per set, in set order (copy)."""
        return list(self._set_evictions)

    def set_pressure(self, hot_sets: int = 3) -> dict[str, object]:
        """Per-set eviction pressure summary for the profile report.

        Uneven pressure (a few sets absorbing most evictions) is the
        conflict-miss signature the set-indexed layout can hide behind an
        innocuous aggregate hit ratio.
        """
        counts = self._set_evictions
        total = sum(counts)
        hottest = sorted(
            range(self.num_sets), key=lambda i: (-counts[i], i)
        )[:hot_sets]
        return {
            "sets": self.num_sets,
            "evictions": total,
            "max": max(counts) if counts else 0,
            "mean": total / self.num_sets if self.num_sets else 0.0,
            "hot_sets": [(i, counts[i]) for i in hottest if counts[i]],
        }

    def publish(self, registry: "MetricsRegistry", **labels: object) -> None:
        """Publish access counters into a metrics registry.

        Extra ``labels`` (e.g. ``cache="vertex"``) distinguish instances
        sharing one registry.
        """
        events = registry.counter(
            "cache_events_total", "set-associative cache events by kind"
        )
        events.inc(self.stats.hits, event="hit", **labels)
        events.inc(self.stats.misses, event="miss", **labels)
        events.inc(self.stats.evictions, event="eviction", **labels)
        registry.gauge(
            "cache_hit_ratio", "hits over accesses per cache instance"
        ).set(self.stats.hit_ratio, **labels)
        pressure = registry.histogram(
            "cache_set_evictions", "distribution of evictions across sets"
        )
        for count in self._set_evictions:
            pressure.observe(count, **labels)

    def resident_tags(self) -> set[int]:
        """All currently valid tags (for invariants in tests)."""
        return {
            line.tag
            for lines in self._sets
            for line in lines
            if line.valid
        }

    def flush(self) -> None:
        """Invalidate every line (counters are kept)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.tag = -1
