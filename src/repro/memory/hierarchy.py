"""The locality-aware memory hierarchy (LAMH) — paper §IV, Fig. 7.

On-chip memory is split into a *vertex memory* and an *edge memory*
(isolating the two access streams avoids thrashing between them); each side
is further split into a **high-priority** scratchpad that permanently pins
the top-τ data by ON1 rank and a **low-priority** four-way set-associative
cache run under the locality-preserved replacement policy (Equation 2).

The hierarchy is functional: an access returns *where* it was served
(:class:`AccessLevel`); the accelerator simulator attaches latencies and
partition contention on top.  Ranks arrive with each request — after graph
reordering the vertex ID *is* the rank, and an edge inherits the rank of its
source vertex (``ON1(edge) = ON1(v_src)``), so the controller's priority
test is a single comparison, faithfully to §IV-C's reordering trick.

τ defaults to the paper's sizing rule ``MIN(50%, |Memory| / (2(|V|+|E|)))``
(§VI-A) and the low-priority side mirrors the high-priority capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.csr import CSRGraph

from .cache import SetAssociativeCache
from .policies import LocalityPreservedPolicy, LRUPolicy, ReplacementPolicy
from .scratchpad import Scratchpad

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "AccessLevel",
    "SideStats",
    "MemorySide",
    "LocalityAwareHierarchy",
    "default_tau",
    "edge_cutoff_rank",
    "build_hierarchy",
]


class AccessLevel(enum.Enum):
    """Where a request was served."""

    HIGH = "high"  # high-priority scratchpad (pinned)
    LOW_HIT = "low_hit"  # low-priority cache hit
    MISS = "miss"  # off-chip


@dataclass
class SideStats:
    """Access accounting for one side (vertex or edge)."""

    high_hits: int = 0
    low_hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.high_hits + self.low_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """On-chip hit ratio (high + low hits over all accesses)."""
        total = self.accesses
        return (self.high_hits + self.low_hits) / total if total else 0.0


class MemorySide:
    """One of the two isolated memories (vertex or edge).

    ``address_offset`` shifts this side's addresses inside a *shared* cache
    — used only by the Uniform-LRU baseline of Fig. 12, where vertex and
    edge data contend for one undifferentiated cache (LAMH's vertex/edge
    isolation, §IV-A, is precisely what that baseline lacks).
    """

    def __init__(
        self,
        name: str,
        high_cutoff_rank: int,
        low_cache: SetAssociativeCache,
        address_offset: int = 0,
    ) -> None:
        self.name = name
        self.scratchpad = Scratchpad(cutoff=high_cutoff_rank)
        self.low_cache = low_cache
        self.address_offset = address_offset
        self.stats = SideStats()
        # Optional access-event observer (repro.obs.hooks attaches one for
        # access-traced runs).  Purely observational: called with values
        # this method already computed, after all state transitions.
        self.observer = None

    @property
    def capacity_entries(self) -> int:
        """High + low on-chip entries of this side."""
        return self.scratchpad.capacity_entries + self.low_cache.capacity_entries

    def access(self, address: int, rank: int) -> AccessLevel:
        """Serve one request: priority test, then cache lookup."""
        if self.scratchpad.access(rank):
            self.stats.high_hits += 1
            level = AccessLevel.HIGH
        elif self.low_cache.access(address + self.address_offset, rank):
            self.stats.low_hits += 1
            level = AccessLevel.LOW_HIT
        else:
            self.stats.misses += 1
            level = AccessLevel.MISS
        if self.observer is not None:
            self.observer(address, rank, level)
        return level

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish this side's level counters into a metrics registry."""
        accesses = registry.counter(
            "memory_accesses_total",
            "hierarchy requests by side and service level",
        )
        accesses.inc(self.stats.high_hits, side=self.name, level="high")
        accesses.inc(self.stats.low_hits, side=self.name, level="low")
        accesses.inc(self.stats.misses, side=self.name, level="miss")
        registry.gauge(
            "memory_hit_ratio", "on-chip hit ratio per side"
        ).set(self.stats.hit_ratio, side=self.name)


class LocalityAwareHierarchy:
    """Vertex + edge memory pair with a shared rank mapping.

    ``edge_rank`` maps each CSR edge slot to its global rank position when
    slots are ordered by their source vertex's ON1 rank — i.e. the physical
    position the slot would occupy in the reordered graph's edge array, so
    "pinned" is a plain prefix test at slot granularity (§IV-B/C).  When
    ``None`` (the uniform baseline) the source vertex's rank is used.
    """

    def __init__(
        self,
        vertex_side: MemorySide,
        edge_side: MemorySide,
        vertex_rank: np.ndarray,
        edge_rank: np.ndarray | None = None,
    ) -> None:
        self.vertex_side = vertex_side
        self.edge_side = edge_side
        self.vertex_rank = vertex_rank
        self.edge_rank = edge_rank

    def access_vertex(self, vid: int) -> AccessLevel:
        """Access vertex ``vid``'s CSR entry."""
        return self.vertex_side.access(vid, int(self.vertex_rank[vid]))

    def access_edge(self, index: int, src: int) -> AccessLevel:
        """Access edge slot ``index`` owned by source vertex ``src``."""
        if self.edge_rank is not None:
            rank = int(self.edge_rank[index])
        else:
            rank = int(self.vertex_rank[src])
        return self.edge_side.access(index, rank)

    @property
    def capacity_entries(self) -> int:
        """Total on-chip entries."""
        return self.vertex_side.capacity_entries + self.edge_side.capacity_entries

    def hit_ratios(self) -> dict[str, float]:
        """Per-side on-chip hit ratios (the Fig. 12a metric)."""
        return {
            "vertex": self.vertex_side.stats.hit_ratio,
            "edge": self.edge_side.stats.hit_ratio,
        }

    def low_cache_pressure(self) -> dict[str, dict[str, object]]:
        """Set-pressure summaries of the low-priority caches by side.

        The uniform baseline shares one cache between both sides; it
        appears once under ``"shared"``.
        """
        vertex_cache = self.vertex_side.low_cache
        edge_cache = self.edge_side.low_cache
        if vertex_cache is edge_cache:
            return {"shared": vertex_cache.set_pressure()}
        return {
            "vertex": vertex_cache.set_pressure(),
            "edge": edge_cache.set_pressure(),
        }

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish both sides plus their low-cache internals."""
        self.vertex_side.publish(registry)
        self.edge_side.publish(registry)
        vertex_cache = self.vertex_side.low_cache
        edge_cache = self.edge_side.low_cache
        if vertex_cache is edge_cache:
            vertex_cache.publish(registry, cache="shared")
        else:
            vertex_cache.publish(registry, cache="vertex")
            edge_cache.publish(registry, cache="edge")


def default_tau(graph: CSRGraph, total_entries: int) -> float:
    """The paper's τ rule: ``MIN(50%, |Memory| / (2(|V| + |E|)))``.

    Capacities and data sizes are in entries; edge data is counted in CSR
    slots (each undirected edge stored twice), matching what the on-chip
    memory actually holds.
    """
    data_entries = graph.num_vertices + len(graph.neighbors)
    return min(0.5, total_entries / (2 * data_entries))


def edge_cutoff_rank(
    graph: CSRGraph, vertex_rank: np.ndarray, target_slots: int
) -> tuple[int, int]:
    """Largest rank prefix whose adjacency slots fit ``target_slots``.

    Returns ``(cutoff_rank, slots_used)``: edges whose source vertex has
    rank below ``cutoff_rank`` are high priority.  Cutting at vertex
    boundaries keeps whole adjacency slices resident, as the reordered CSR
    prefix does in the paper.
    """
    degrees = graph.degrees()
    degrees_by_rank = np.zeros(graph.num_vertices, dtype=np.int64)
    degrees_by_rank[vertex_rank] = degrees
    cumulative = np.cumsum(degrees_by_rank)
    cutoff = int(np.searchsorted(cumulative, target_slots, side="right"))
    slots_used = int(cumulative[cutoff - 1]) if cutoff > 0 else 0
    return cutoff, slots_used


def edge_rank_positions(graph: CSRGraph, vertex_rank: np.ndarray) -> np.ndarray:
    """Global rank position of every CSR edge slot.

    Position of each slot when all slots are ordered by their source
    vertex's rank (ties kept in slice order) — the physical address the
    slot would have in the reordered graph, making the §IV-B priority test
    a single prefix comparison at *slot* granularity.
    """
    src_per_slot = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees()
    )
    order = np.lexsort(
        (np.arange(len(src_per_slot)), vertex_rank[src_per_slot])
    )
    positions = np.empty(len(src_per_slot), dtype=np.int64)
    positions[order] = np.arange(len(src_per_slot))
    return positions


def _make_cache(
    capacity: int, ways: int, line_size: int, policy: ReplacementPolicy
) -> SetAssociativeCache:
    num_sets = max(1, capacity // (ways * line_size))
    return SetAssociativeCache(
        num_sets=num_sets, ways=ways, line_size=line_size, policy=policy
    )


def build_hierarchy(
    graph: CSRGraph,
    total_entries: int,
    vertex_rank: np.ndarray | None = None,
    tau: float | None = None,
    low_policy: str = "locality",
    lam: float = 1.0,
    ways: int = 4,
    vertex_line: int = 1,
    edge_line: int = 4,
) -> LocalityAwareHierarchy:
    """Construct a hierarchy design point.

    ``low_policy`` selects the Fig. 12 variants:

    * ``"locality"`` — full LAMH (Equation 2 replacement, balance ``lam``),
    * ``"lru"`` — *Static + LRU*: same high/low split, LRU low side,
    * ``"uniform"`` — *Uniform LRU*: no pinning; the whole budget is one
      LRU cache per side.

    ``tau`` overrides the paper's sizing rule (used by the Fig. 14a sweep,
    where the low side always mirrors the high side).
    """
    if total_entries < 2:
        raise ValueError("total_entries must be >= 2")
    if vertex_rank is None:
        vertex_rank = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        vertex_rank = np.asarray(vertex_rank, dtype=np.int64)
        if len(vertex_rank) != graph.num_vertices:
            raise ValueError("vertex_rank must have one entry per vertex")

    num_slots = len(graph.neighbors)
    if low_policy == "uniform":
        # Fig. 12's baseline: one undifferentiated LRU cache shared by
        # vertex and edge data (no pinning, no vertex/edge isolation).
        # Edge addresses are offset past the vertex region so both streams
        # contend for the same sets.
        shared = _make_cache(total_entries, ways, edge_line, LRUPolicy())
        vertex_side = MemorySide("vertex", 0, shared)
        edge_side = MemorySide(
            "edge", 0, shared, address_offset=graph.num_vertices
        )
        return LocalityAwareHierarchy(vertex_side, edge_side, vertex_rank)

    if low_policy == "locality":
        def policy_factory() -> ReplacementPolicy:
            return LocalityPreservedPolicy(lam=lam)
    elif low_policy == "lru":
        def policy_factory() -> ReplacementPolicy:
            return LRUPolicy()
    else:
        raise ValueError(
            f"unknown low_policy {low_policy!r}; "
            "expected 'locality', 'lru', or 'uniform'"
        )

    effective_tau = tau if tau is not None else default_tau(graph, total_entries)
    if not 0.0 < effective_tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {effective_tau}")

    vertex_cutoff = max(1, int(round(effective_tau * graph.num_vertices)))
    edge_cutoff = max(1, int(round(effective_tau * num_slots))) if num_slots else 0

    vertex_side = MemorySide(
        "vertex",
        vertex_cutoff,
        _make_cache(vertex_cutoff, ways, vertex_line, policy_factory()),
    )
    edge_side = MemorySide(
        "edge",
        edge_cutoff,
        _make_cache(
            max(edge_cutoff, ways * edge_line),
            ways,
            edge_line,
            policy_factory(),
        ),
    )
    return LocalityAwareHierarchy(
        vertex_side,
        edge_side,
        vertex_rank,
        edge_rank=edge_rank_positions(graph, vertex_rank),
    )
