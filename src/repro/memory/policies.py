"""Cache replacement policies (paper §IV-C).

The low-priority memory must pick victims.  Classic recency-based policies
(LRU et al.) "may destroy the extension locality of some low-priority data
that is not frequent recently but frequent globally", so GRAMER blends the
static ON1 rank with recency::

    victim = argmax_v  Rank(ON1(v)) + λ · Rec(v)        (Equation 2)

where ``Rec(v)`` is the number of accesses since ``v`` was last referenced.
``λ = 0`` degenerates to rank-only (a second static memory), large ``λ``
degenerates to LRU; the paper uses ``λ = 1`` and sweeps it in Fig. 14(b).

Policies see :class:`LineState` views and return the victim way; they are
stateless, so one instance can serve every set of every cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = [
    "LineState",
    "ReplacementPolicy",
    "LRUPolicy",
    "LocalityPreservedPolicy",
    "FIFOPolicy",
    "RandomPolicy",
]


@dataclass
class LineState:
    """Replacement-relevant metadata of one cache line."""

    valid: bool = False
    tag: int = -1
    rank: int = 0  # Rank(ON1(data)) of the resident line
    last_access: int = 0  # global access sequence number of last touch
    fill_seq: int = 0  # global sequence number when filled


class ReplacementPolicy(Protocol):
    """Chooses which way of a full set to evict."""

    name: str

    def victim(self, lines: Sequence[LineState], clock: int) -> int:
        """Index of the way to evict.  All lines are valid when called."""


class LRUPolicy:
    """Least-recently-used: evict the stalest line."""

    name = "lru"

    def victim(self, lines: Sequence[LineState], clock: int) -> int:
        return min(range(len(lines)), key=lambda w: lines[w].last_access)


class LocalityPreservedPolicy:
    """GRAMER's Equation (2): ``argmax Rank + λ·Rec``.

    ``rank_scale`` normalises the rank term so rank and recency compete on
    comparable magnitudes regardless of graph size; the default (1.0) uses
    raw ranks as the paper's formula states.
    """

    name = "locality-preserved"

    def __init__(self, lam: float = 1.0, rank_scale: float = 1.0) -> None:
        if lam < 0:
            raise ValueError("lambda must be >= 0")
        self.lam = lam
        self.rank_scale = rank_scale

    def victim(self, lines: Sequence[LineState], clock: int) -> int:
        def score(way: int) -> float:
            line = lines[way]
            recency = clock - line.last_access
            return line.rank * self.rank_scale + self.lam * recency

        return max(range(len(lines)), key=score)


class FIFOPolicy:
    """First-in-first-out: evict the oldest fill (ablation baseline)."""

    name = "fifo"

    def victim(self, lines: Sequence[LineState], clock: int) -> int:
        return min(range(len(lines)), key=lambda w: lines[w].fill_seq)


class RandomPolicy:
    """Deterministic pseudo-random eviction (ablation baseline)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._state = seed * 2654435761 % 2**32 or 1

    def victim(self, lines: Sequence[LineState], clock: int) -> int:
        # xorshift32: cheap, deterministic, and stateless per call pattern.
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x % len(lines)
