"""High-priority scratchpad memory (paper §IV-B).

The high-priority memory "permanently resides the high-priority data without
data eviction ... implemented as a fast scratchpad".  After graph reordering
the resident set is simply a rank prefix, so the scratchpad is a cutoff plus
counters — which is the whole point of the paper's reordering trick: the
membership test is one comparison against the request's ID.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Scratchpad"]


@dataclass
class Scratchpad:
    """Pinned storage for all items with ``rank < cutoff``."""

    cutoff: int
    hits: int = 0

    def __post_init__(self) -> None:
        if self.cutoff < 0:
            raise ValueError("cutoff must be >= 0")

    @property
    def capacity_entries(self) -> int:
        """Entries permanently resident."""
        return self.cutoff

    def holds(self, rank: int) -> bool:
        """Whether the item with this rank is resident (pure predicate)."""
        return rank < self.cutoff

    def access(self, rank: int) -> bool:
        """Access by rank; counts and returns residency."""
        if rank < self.cutoff:
            self.hits += 1
            return True
        return False
