"""Off-chip DRAM timing model.

A fixed access latency plus a bandwidth constraint modeled as ``channels``
independent servers, each able to start one transfer every
``cycles_per_transfer`` cycles (the Alveo U250 carries four DDR4 channels,
§VI-A).  The simulators call :meth:`service` with the request's issue time
and receive its completion time; queueing emerges from the channel
next-free bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DRAMModel"]


@dataclass
class DRAMModel:
    """Latency/bandwidth model of the off-chip memory."""

    latency_cycles: int = 100
    channels: int = 4
    cycles_per_transfer: int = 2
    transfers: int = 0
    busy_cycles: int = 0
    _next_free: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.latency_cycles < 0 or self.channels < 1:
            raise ValueError("latency must be >= 0 and channels >= 1")
        if self.cycles_per_transfer < 1:
            raise ValueError("cycles_per_transfer must be >= 1")
        self._next_free = [0] * self.channels

    def service(self, issue_time: int, address: int = 0) -> int:
        """Serve a request issued at ``issue_time``; returns completion time.

        The request is steered to its address-interleaved channel (matching
        DDR channel interleaving); it starts when the channel frees up.
        """
        channel = address % self.channels
        start = max(issue_time, self._next_free[channel])
        self._next_free[channel] = start + self.cycles_per_transfer
        self.transfers += 1
        self.busy_cycles += self.cycles_per_transfer
        return start + self.latency_cycles

    def reset(self) -> None:
        """Clear channel state and counters."""
        self._next_free = [0] * self.channels
        self.transfers = 0
        self.busy_cycles = 0
