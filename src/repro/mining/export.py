"""Result serialisation: MiningResult ↔ JSON / CSV.

Downstream users want mining output they can load elsewhere; these helpers
flatten :class:`~repro.mining.apps.base.MiningResult` (whose keys are
:class:`~repro.mining.patterns.PatternCode` objects) into plain records and
back.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING

from .apps.base import MiningResult
from .patterns import PatternCode, pattern_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    import os

__all__ = [
    "result_to_records",
    "result_to_json",
    "result_from_json",
    "result_to_csv",
    "save_result",
    "load_result",
]


def _code_to_dict(code: PatternCode) -> dict:
    return {
        "size": code.size,
        "adjacency": code.adjacency,
        "labels": list(code.labels),
    }


def _code_from_dict(payload: dict) -> PatternCode:
    return PatternCode(
        size=int(payload["size"]),
        adjacency=int(payload["adjacency"]),
        labels=tuple(int(lab) for lab in payload["labels"]),
    )


def result_to_records(result: MiningResult) -> list[dict]:
    """Flat per-pattern rows: size, name, encoding, count."""
    records = []
    for size in sorted(result.patterns_by_size):
        for code, count in sorted(result.patterns_by_size[size].items()):
            records.append(
                {
                    "size": size,
                    "pattern": pattern_name(code),
                    "adjacency": code.adjacency,
                    "labels": list(code.labels),
                    "count": count,
                }
            )
    return records


def result_to_json(result: MiningResult) -> str:
    """Lossless JSON encoding of a MiningResult."""
    payload = {
        "app_name": result.app_name,
        "max_vertices": result.max_vertices,
        "embeddings_by_size": {
            str(k): v for k, v in result.embeddings_by_size.items()
        },
        "patterns_by_size": {
            str(size): [
                {"code": _code_to_dict(code), "count": count}
                for code, count in sorted(counter.items())
            ]
            for size, counter in result.patterns_by_size.items()
        },
        "summary": result.summary,
    }
    return json.dumps(payload, indent=2, default=str)


def result_from_json(text: str) -> MiningResult:
    """Inverse of :func:`result_to_json`."""
    payload = json.loads(text)
    return MiningResult(
        app_name=payload["app_name"],
        max_vertices=int(payload["max_vertices"]),
        embeddings_by_size={
            int(k): int(v)
            for k, v in payload["embeddings_by_size"].items()
        },
        patterns_by_size={
            int(size): {
                _code_from_dict(entry["code"]): int(entry["count"])
                for entry in entries
            }
            for size, entries in payload["patterns_by_size"].items()
        },
        summary=payload.get("summary", {}),
    )


def result_to_csv(result: MiningResult) -> str:
    """CSV with one row per (size, pattern, count)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=["size", "pattern", "adjacency", "labels", "count"]
    )
    writer.writeheader()
    for record in result_to_records(result):
        row = dict(record)
        row["labels"] = "|".join(str(lab) for lab in record["labels"])
        writer.writerow(row)
    return buffer.getvalue()


def save_result(result: MiningResult, path: "str | os.PathLike[str]") -> None:
    """Write the JSON encoding to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(result))


def load_result(path: "str | os.PathLike[str]") -> MiningResult:
    """Read a result written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_json(handle.read())
