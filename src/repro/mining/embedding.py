"""User-facing embedding object.

The engines work on bare tuples for speed; :class:`Embedding` wraps one
result with convenience accessors for notebooks, examples, and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph

from .canonical import is_canonical_embedding
from .patterns import PatternCode, canonical_code, pattern_name

__all__ = ["Embedding"]


@dataclass(frozen=True)
class Embedding:
    """A connected induced subgraph of ``graph`` in insertion order."""

    graph: CSRGraph
    vertices: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.vertices)) != len(self.vertices):
            raise ValueError("embedding vertices must be distinct")
        for v in self.vertices:
            if not 0 <= v < self.graph.num_vertices:
                raise ValueError(f"vertex {v} out of range")

    @property
    def size(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    def edges(self) -> list[tuple[int, int]]:
        """Induced edges as pairs of *graph* vertex IDs."""
        return [
            (self.vertices[i], self.vertices[j])
            for i in range(self.size)
            for j in range(i + 1, self.size)
            if self.graph.has_edge(self.vertices[i], self.vertices[j])
        ]

    def pattern(self, labeled: bool = False) -> PatternCode:
        """Canonical pattern of the induced subgraph."""
        index = {v: i for i, v in enumerate(self.vertices)}
        local_edges = [(index[u], index[v]) for u, v in self.edges()]
        labels = (
            tuple(self.graph.label(v) for v in self.vertices)
            if labeled
            else None
        )
        return canonical_code(local_edges, self.size, labels)

    def pattern_name(self) -> str:
        """Readable pattern name (e.g. ``triangle``)."""
        return pattern_name(self.pattern())

    @property
    def is_clique(self) -> bool:
        """Whether the embedding is a complete subgraph."""
        return len(self.edges()) == self.size * (self.size - 1) // 2

    @property
    def is_canonical(self) -> bool:
        """Whether the insertion order is the canonical order."""
        return is_canonical_embedding(self.graph, self.vertices)
