"""Automorphism (canonicality) checking.

Graph mining must count each embedding once even though its vertex set can
be discovered through many extension orders (§II-A: automorphic embeddings
"can be considered identical").  GRAMER filters duplicates with the
canonicality mechanism of Arabesque [38]; this module implements that rule
and proves it out.

Definition.  For a connected vertex set ``S`` the *canonical order* is built
greedily: start from ``min(S)``; at every step append the smallest-ID vertex
of ``S`` adjacent to the prefix.  Each set has exactly one canonical order,
so accepting an embedding iff its insertion order is canonical enumerates
every connected induced subgraph exactly once.

Incremental form (what the extender checks per candidate).  Let
``(v_0 .. v_{k-1})`` be a canonical embedding and ``u`` a candidate proposed
from member ``m`` (``u`` was read from ``v_m``'s adjacency list).  The
extended embedding is canonical iff:

1. ``u`` is not already a member;
2. *first-neighbour*: ``u`` is not adjacent to any ``v_i`` with ``i < m``
   (otherwise the same set is generated from that earlier member — this is
   the dedup part, and it costs connectivity checks, which is exactly the
   paper's extend-check random edge traffic);
3. ``u > v_0`` (the minimum of the set must stay at position 0);
4. ``u > v_i`` for every ``i > m`` (if ``u`` were smaller than a later
   member, the greedy order would have picked ``u`` at that step).

The equivalence of the incremental form and the definition is established by
`tests/mining/test_canonical.py`, including a hypothesis property comparing
against brute-force enumeration.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.csr import CSRGraph

__all__ = [
    "canonical_order",
    "is_canonical_embedding",
    "id_checks_pass",
    "first_neighbor_index",
]


def canonical_order(graph: CSRGraph, vertex_set: Sequence[int]) -> tuple[int, ...]:
    """The unique canonical order of a connected vertex set.

    Raises ``ValueError`` if the induced subgraph is not connected (no
    canonical order exists for disconnected sets; mining never produces
    them).
    """
    remaining = set(int(v) for v in vertex_set)
    if len(remaining) != len(vertex_set):
        raise ValueError("vertex_set contains duplicates")
    if not remaining:
        return ()
    order = [min(remaining)]
    remaining.remove(order[0])
    while remaining:
        frontier = [
            v
            for v in remaining
            if any(graph.has_edge(v, w) for w in order)
        ]
        if not frontier:
            raise ValueError(f"vertex set {sorted(vertex_set)} is not connected")
        nxt = min(frontier)
        order.append(nxt)
        remaining.remove(nxt)
    return tuple(order)


def is_canonical_embedding(graph: CSRGraph, vertices: Sequence[int]) -> bool:
    """Whether ``vertices`` (in insertion order) is the canonical order."""
    try:
        return tuple(int(v) for v in vertices) == canonical_order(graph, vertices)
    except ValueError:
        return False


def id_checks_pass(vertices: Sequence[int], member_idx: int, candidate: int) -> bool:
    """Conditions 1, 3 and 4 of the incremental rule (pure ID comparisons).

    These are free in hardware (the IDs are already in the pipeline
    registers), so the extender runs them before spending memory accesses on
    the first-neighbour connectivity checks.
    """
    if candidate in vertices:
        return False
    if candidate < vertices[0]:
        return False
    for i in range(member_idx + 1, len(vertices)):
        if candidate < vertices[i]:
            return False
    return True


def first_neighbor_index(graph: CSRGraph, vertices: Sequence[int], u: int) -> int:
    """Index of the first member adjacent to ``u`` (reference helper)."""
    for i, v in enumerate(vertices):
        if graph.has_edge(u, v):
            return i
    raise ValueError(f"{u} is not adjacent to the embedding")
