"""Subgraph matching: count embeddings of one given pattern.

§II-A: clique finding "can thus be simply regarded as a subgraph matching
problem [21], [32], [37]" — the pattern is known a priori.  This application
generalises that: given any target :class:`PatternCode`, enumerate its
(vertex-induced) embeddings, pruning every intermediate embedding whose
induced subgraph cannot be completed to the target.

The prune is exact for induced matching: an intermediate embedding of a
final match is the induced subgraph of the target on some vertex subset, so
an intermediate survives iff its code embeds *induced* into the target
(:func:`can_embed_induced`, memoised brute force — patterns are ≤ 8
vertices).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations, combinations
from typing import TYPE_CHECKING

from repro.mining.patterns import PatternCode, canonical_code

from .base import Application

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["SubgraphMatching", "can_embed_induced"]


@lru_cache(maxsize=65536)
def can_embed_induced(sub: PatternCode, target: PatternCode) -> bool:
    """Whether ``sub`` is an induced (label-respecting) subgraph of ``target``."""
    if sub.size > target.size:
        return False
    sub_edges = {frozenset(e) for e in sub.edges()}
    target_adj = [
        [False] * target.size for _ in range(target.size)
    ]
    for i, j in target.edges():
        target_adj[i][j] = target_adj[j][i] = True
    for subset in combinations(range(target.size), sub.size):
        for mapping in permutations(subset):
            if any(
                sub.labels[i] != target.labels[mapping[i]]
                for i in range(sub.size)
            ):
                continue
            ok = True
            for i in range(sub.size):
                for j in range(i + 1, sub.size):
                    has = frozenset((i, j)) in sub_edges
                    if has != target_adj[mapping[i]][mapping[j]]:
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                return True
    return False


class SubgraphMatching(Application):
    """Count induced embeddings of ``pattern`` in the input graph."""

    name = "SM"

    def __init__(self, pattern: PatternCode) -> None:
        if not pattern.is_connected:
            raise ValueError("target pattern must be connected")
        self.pattern = pattern
        self.needs_labels = any(lab != 0 for lab in pattern.labels)
        super().__init__(max_vertices=pattern.size)

    def filter(self, graph, vertices, columns) -> bool:
        code = self.pattern_of(graph, vertices, columns)
        if len(vertices) == self.pattern.size:
            return code == self.pattern
        return can_embed_induced(code, self.pattern)

    def counts_patterns(self, size: int) -> bool:
        return size == self.pattern.size

    @property
    def num_matches(self) -> int:
        """Embeddings isomorphic to the target pattern."""
        return self.embeddings_by_size.get(self.pattern.size, 0)

    def summary(self) -> dict[str, object]:
        return {
            "pattern": str(self.pattern),
            "num_matches": self.num_matches,
        }


def pattern_from_edges(
    edges: list[tuple[int, int]], size: int, labels=None
) -> PatternCode:
    """Convenience: build a matching target from an edge list."""
    return canonical_code(edges, size, labels)
