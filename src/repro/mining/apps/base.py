"""Application base class: the three primitives of Table I.

An :class:`Application` supplies ``Aggregate_filter``, ``Filter`` and
``Process`` (plus bookkeeping) to the engine, exactly mirroring the
embedding-centric model of Algorithm 1.  Results accumulate in per-size
pattern counters; :meth:`result` snapshots them into an immutable
:class:`MiningResult`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mining.patterns import PatternCode, code_from_columns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["Application", "MiningResult"]


@dataclass(frozen=True)
class MiningResult:
    """Snapshot of a finished mining run."""

    app_name: str
    max_vertices: int
    embeddings_by_size: dict[int, int]
    patterns_by_size: dict[int, dict[PatternCode, int]]
    summary: dict[str, object] = field(default_factory=dict)

    @property
    def total_embeddings(self) -> int:
        """Total accepted embeddings across all sizes."""
        return sum(self.embeddings_by_size.values())

    def pattern_count(self, code: PatternCode) -> int:
        """Occurrences of one pattern (0 when absent)."""
        return self.patterns_by_size.get(code.size, {}).get(code, 0)


class Application:
    """Base graph-mining application (subclass per algorithm).

    Subclasses override the Table I primitives.  The engine calls:

    * :meth:`root_filter` once per initial (1-vertex) embedding,
    * :meth:`filter` on every canonical extension (``Filter(e')``),
    * :meth:`process` on every filter-passing embedding (``Process(e')``),
    * :meth:`aggregate_filter` before an embedding is extended further
      (``Aggregate_filter(e)``).

    ``clique_only`` lets the extend-check reject candidates missing an edge
    to any member early — the hardware equivalent of CF's IsClique filter
    running inside the Extender.
    """

    name = "base"
    clique_only = False
    needs_labels = False

    def __init__(self, max_vertices: int) -> None:
        if max_vertices < 2:
            raise ValueError("max_vertices must be >= 2")
        self.max_vertices = max_vertices
        self.reset()

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Clear accumulated state so the instance can run again."""
        self.embeddings_by_size: Counter[int] = Counter()
        self.patterns_by_size: dict[int, Counter[PatternCode]] = {}
        self.candidates_checked = 0  # maintained by the engines

    def prepare(self, graph: "CSRGraph") -> None:
        """Pre-run hook (e.g. FSM precomputes level-2 support counts)."""

    def finalize(self, graph: "CSRGraph") -> None:
        """Post-run hook."""

    # -- Table I primitives ------------------------------------------------------

    def root_filter(self, graph: "CSRGraph", vertex: int) -> bool:
        """Whether the 1-vertex embedding ``{vertex}`` seeds exploration."""
        return True

    def aggregate_filter(
        self,
        graph: "CSRGraph",
        vertices: tuple[int, ...],
        columns: tuple[int, ...],
    ) -> bool:
        """``Aggregate_filter(e)`` — may this embedding be extended?"""
        return True

    def filter(
        self,
        graph: "CSRGraph",
        vertices: tuple[int, ...],
        columns: tuple[int, ...],
    ) -> bool:
        """``Filter(e')`` — is this embedding wanted?"""
        return True

    def process(
        self,
        graph: "CSRGraph",
        vertices: tuple[int, ...],
        columns: tuple[int, ...],
    ) -> None:
        """``Process(e')`` — default: count the embedding and its pattern."""
        size = len(vertices)
        self.embeddings_by_size[size] += 1
        if self.counts_patterns(size):
            code = self.pattern_of(graph, vertices, columns)
            by_size = self.patterns_by_size.get(size)
            if by_size is None:
                by_size = self.patterns_by_size[size] = Counter()
            by_size[code] += 1

    # -- helpers -----------------------------------------------------------------

    def counts_patterns(self, size: int) -> bool:
        """Whether per-pattern counters are kept at this embedding size."""
        return size >= 3

    def pattern_of(
        self,
        graph: "CSRGraph",
        vertices: tuple[int, ...],
        columns: tuple[int, ...],
    ) -> PatternCode:
        """Canonical pattern ``P(e)`` of an embedding."""
        labels = (
            tuple(graph.label(v) for v in vertices)
            if self.needs_labels
            else None
        )
        return code_from_columns(columns, labels)

    def summary(self) -> dict[str, object]:
        """Application-specific result summary (override as needed)."""
        return {}

    def result(self) -> MiningResult:
        """Immutable snapshot of the accumulated results."""
        return MiningResult(
            app_name=self.name,
            max_vertices=self.max_vertices,
            embeddings_by_size=dict(self.embeddings_by_size),
            patterns_by_size={
                size: dict(counter)
                for size, counter in self.patterns_by_size.items()
            },
            summary=self.summary(),
        )
