"""Motif counting (MC).

Table I: all three primitives pass everything through — every
non-automorphic embedding is counted.  ``k``-MC reports the census of
``k``-vertex patterns (paper Table III caption: "k-MC counts the occurrence
times of k-vertex patterns"); intermediate sizes ≥ 3 are tallied too since
the enumeration visits them anyway.
"""

from __future__ import annotations

from repro.mining.patterns import PatternCode, pattern_name

from .base import Application

__all__ = ["MotifCounting"]


class MotifCounting(Application):
    """Count occurrences of all connected ``k``-vertex patterns."""

    name = "MC"

    def motif_census(self, size: int | None = None) -> dict[PatternCode, int]:
        """Pattern -> occurrence count at ``size`` (default: max size)."""
        size = size if size is not None else self.max_vertices
        return dict(self.patterns_by_size.get(size, {}))

    def named_census(self, size: int | None = None) -> dict[str, int]:
        """Census keyed by human-readable pattern names."""
        return {
            pattern_name(code): count
            for code, count in sorted(self.motif_census(size).items())
        }

    def summary(self) -> dict[str, object]:
        return {
            "census": self.named_census(),
            "k": self.max_vertices,
        }
