"""Clique finding (CF).

Table I: ``Aggregate_filter = TRUE``, ``Filter = IsClique(e)``,
``Process = (P(e), 1)``.  ``k``-CF finds all complete subgraphs with ``k``
vertices (paper Table III caption).  Because the extend-check runs with
``clique_only=True``, every accepted embedding is already a clique of its
size and the explicit filter is a no-op double-check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import Application

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["CliqueFinding"]


class CliqueFinding(Application):
    """Find all ``k``-vertex cliques (``k = max_vertices``)."""

    name = "CF"
    clique_only = True

    def filter(self, graph, vertices, columns) -> bool:
        # IsClique: every member adjacent to every earlier member.  The
        # clique-only extend-check guarantees this; assert the invariant.
        size = len(vertices)
        return all(
            columns[i] == (1 << i) - 1 for i in range(1, size)
        )

    def counts_patterns(self, size: int) -> bool:
        # Only the target size is reported: k-CF counts k-cliques.
        return size == self.max_vertices

    def summary(self) -> dict[str, object]:
        k = self.max_vertices
        return {"num_cliques": self.embeddings_by_size.get(k, 0), "k": k}

    @property
    def num_cliques(self) -> int:
        """Number of ``k``-cliques found."""
        return self.embeddings_by_size.get(self.max_vertices, 0)
