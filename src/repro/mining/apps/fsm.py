"""Frequent subgraph mining (FSM).

Table I: ``Aggregate_filter(e) = Num(P(e)) >= Thres``, ``Filter = TRUE``,
``Process = (P(e), e)``.  The paper's FSM-k "finds the 3-vertex patterns
that have occurred at least k times", so the application mines labeled
patterns up to ``max_vertices`` (3 by default) with an anti-monotone
support prune: an embedding is only extended when its own pattern already
meets the threshold.

The aggregate filter needs the support of size-``s`` patterns while size-``s``
embeddings are still being generated.  Following the paper's per-iteration
semantics (Algorithm 1 applies ``Aggregate_filter`` at the *next* iteration,
after all size-``s`` embeddings exist), size-2 supports — the only level a
3-vertex FSM prunes on — are precomputed exactly in :meth:`prepare` with a
single sequential edge scan.  For deeper FSM the prune falls back to the
degree-based upper bound, which never discards a frequent pattern (it only
extends more than strictly necessary), keeping results exact.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.mining.patterns import PatternCode, canonical_code

from .base import Application

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph

__all__ = ["FrequentSubgraphMining"]


class FrequentSubgraphMining(Application):
    """Find labeled patterns occurring at least ``threshold`` times."""

    name = "FSM"
    needs_labels = True

    def __init__(self, threshold: int, max_vertices: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        super().__init__(max_vertices)

    def reset(self) -> None:
        super().reset()
        self._edge_pattern_support: Counter[PatternCode] = Counter()

    def prepare(self, graph: "CSRGraph") -> None:
        # Exact size-2 supports: one pass over the edge list, counting
        # unordered label pairs.  This is the Aggregate_filter input for the
        # first extension iteration.
        self._edge_pattern_support.clear()
        for u, v in graph.edges():
            code = canonical_code(
                [(0, 1)], 2, (graph.label(u), graph.label(v))
            )
            self._edge_pattern_support[code] += 1

    def counts_patterns(self, size: int) -> bool:
        return size >= 2

    def aggregate_filter(self, graph, vertices, columns) -> bool:
        size = len(vertices)
        if size == 1:
            return True
        if size == 2:
            code = self.pattern_of(graph, vertices, columns)
            return self._edge_pattern_support[code] >= self.threshold
        # Deeper levels: exact per-level support is a BFS-style global
        # barrier; prune with the anti-monotone bound instead (a pattern's
        # support never exceeds any sub-pattern's), which is what the running
        # counter gives us once the level is partially enumerated.  Always
        # extending here keeps results exact; patterns below threshold are
        # removed in frequent_patterns().
        return True

    def frequent_patterns(self, size: int | None = None) -> dict[PatternCode, int]:
        """Patterns at ``size`` (default max) with support >= threshold."""
        size = size if size is not None else self.max_vertices
        if size == 2:
            source = self._edge_pattern_support
        else:
            source = self.patterns_by_size.get(size, Counter())
        return {
            code: count
            for code, count in source.items()
            if count >= self.threshold
        }

    def summary(self) -> dict[str, object]:
        frequent = self.frequent_patterns()
        return {
            "threshold": self.threshold,
            "num_frequent_patterns": len(frequent),
            "max_support": max(frequent.values(), default=0),
        }
