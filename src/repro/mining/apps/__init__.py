"""Graph mining applications (CF, MC, FSM) on the embedding-centric model."""

from .base import Application, MiningResult
from .clique import CliqueFinding
from .fsm import FrequentSubgraphMining
from .match import SubgraphMatching, can_embed_induced
from .motif import MotifCounting

__all__ = [
    "Application",
    "MiningResult",
    "CliqueFinding",
    "FrequentSubgraphMining",
    "SubgraphMatching",
    "can_embed_induced",
    "MotifCounting",
]


def make_app(name: str, **kwargs) -> Application:
    """Factory used by the CLI and experiment harness.

    ``name`` is e.g. ``"3-CF"``, ``"4-MC"`` or ``"FSM-100"`` (the paper's
    Table III naming).
    """
    token = name.strip().upper()
    if token.endswith("-CF"):
        return CliqueFinding(max_vertices=int(token.split("-")[0]), **kwargs)
    if token.endswith("-MC"):
        return MotifCounting(max_vertices=int(token.split("-")[0]), **kwargs)
    if token.startswith("FSM-") or token.startswith("FSM "):
        threshold = int(token[4:].replace("K", "000"))
        return FrequentSubgraphMining(threshold=threshold, **kwargs)
    raise ValueError(
        f"unknown application {name!r}; expected k-CF, k-MC, or FSM-k"
    )
