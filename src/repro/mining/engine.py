"""The extend-check mining engine.

This module is the single implementation of embedding extension shared by
*every* execution vehicle in the repository:

* the software reference / CPU baselines (DFS and BFS drivers below),
* the memory-trace collectors (``repro.locality.trace``),
* the GRAMER cycle simulator (``repro.accel.sim``), which steps
  :class:`Frame` objects one candidate at a time so that slot-level
  pipelining and work stealing can interleave them.

Sharing one engine guarantees the invariant the whole evaluation rests on:
all vehicles enumerate the identical embedding set and emit the identical
memory-access stream; they differ only in what a memory access *costs*.

Memory-access model (paper §II-B, Fig. 2b)
------------------------------------------
Extending an embedding walks its members in joining order (the compaction
order of Fig. 10).  Activating a member costs one **vertex access** (its CSR
offset/degree entry) and streaming its adjacency costs one **edge access**
per slot.  Each proposed candidate ``u`` is then connectivity-checked
against every embedding member: per member, one random vertex access (the
member's offsets) plus a binary search for ``u`` inside *the member's*
adjacency slice.  This is Fig. 2(b)'s access pattern — "random access on
embedding vertices" and "random access on embedding edges": the embedding's
members, which are disproportionately high-degree vertices, are the ones
whose records and edges get hammered, which is exactly the extension
locality GRAMER exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol

from .canonical import id_checks_pass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRGraph
    from .apps.base import Application

__all__ = [
    "MemoryModel",
    "NullMemory",
    "Frame",
    "advance_frame",
    "check_candidate",
    "run_dfs",
    "run_bfs",
    "FrontierOverflowError",
]


class MemoryModel(Protocol):
    """What the engine charges accesses to.

    ``depth`` is set by the engine before each operation to the size of the
    embedding being extended; it equals the paper's iteration number, which
    the Fig. 5 locality analysis buckets on.
    """

    depth: int

    def vertex(self, vid: int) -> None:
        """Charge one access to vertex ``vid``'s CSR offset entry."""

    def edge(self, index: int, src: int) -> None:
        """Charge one access to ``neighbors[index]`` (source vertex ``src``)."""


class NullMemory:
    """A memory model that costs nothing (pure software enumeration)."""

    __slots__ = ("depth",)

    def __init__(self) -> None:
        self.depth = 0

    def vertex(self, vid: int) -> None:
        pass

    def edge(self, index: int, src: int) -> None:
        pass


class Frame:
    """One level of the DFS extension stack.

    Holds the embedding (in canonical joining order), the per-member
    adjacency columns (bit ``j`` of ``columns[i]`` set when members ``i`` and
    ``j < i`` are adjacent), and the extension cursor: which member is being
    extended and how far into its adjacency slice we are.  This is exactly
    the compacted ancestor record of Fig. 10 — (extending vertex, offset) —
    plus the embedding itself, so the accelerator's ancestor-buffer sizing
    is derived from it.

    Work stealing (§V-C) splits a frame's remaining candidate range between
    victim and thief; ``member_limit`` (exclusive last member to extend) and
    ``cursor_limit`` (exclusive cursor bound for the *current* member,
    cleared when the member advances) delimit each side's share.
    """

    __slots__ = (
        "vertices",
        "columns",
        "member_idx",
        "edge_cursor",
        "member_base",
        "member_degree",
        "member_limit",
        "cursor_limit",
    )

    def __init__(
        self, vertices: tuple[int, ...], columns: tuple[int, ...]
    ) -> None:
        self.vertices = vertices
        self.columns = columns
        self.member_idx = 0
        self.edge_cursor = 0
        self.member_base = -1  # CSR offset of current member; -1 = not loaded
        self.member_degree = 0
        self.member_limit = len(vertices)
        self.cursor_limit: int | None = None

    @property
    def size(self) -> int:
        """Number of vertices in the embedding being extended."""
        return len(self.vertices)

    def exhausted(self) -> bool:
        """Whether this frame's share of the adjacency has been scanned."""
        return self.member_idx >= self.member_limit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Frame(vertices={self.vertices}, member={self.member_idx}, "
            f"cursor={self.edge_cursor})"
        )


def advance_frame(graph: "CSRGraph", frame: Frame, mem: MemoryModel) -> int | None:
    """Produce the next raw candidate of ``frame`` (or ``None`` if done).

    Advances the member/cursor state, charging the member vertex access on
    activation and one edge access per adjacency slot read.
    """
    offsets = graph.offsets
    neighbors = graph.neighbors
    while frame.member_idx < frame.member_limit:
        if frame.member_base < 0:
            member = frame.vertices[frame.member_idx]
            mem.vertex(member)
            frame.member_base = int(offsets[member])
            frame.member_degree = int(offsets[member + 1]) - frame.member_base
        bound = frame.member_degree
        if frame.cursor_limit is not None and frame.cursor_limit < bound:
            bound = frame.cursor_limit
        if frame.edge_cursor < bound:
            index = frame.member_base + frame.edge_cursor
            frame.edge_cursor += 1
            mem.edge(index, frame.vertices[frame.member_idx])
            return int(neighbors[index])
        frame.member_idx += 1
        frame.edge_cursor = 0
        frame.member_base = -1
        frame.cursor_limit = None
    return None


def _search_adjacency(
    graph: "CSRGraph", u: int, target: int, mem: MemoryModel,
    probe: str = "binary",
) -> bool:
    """Membership test for ``target`` in ``u``'s adjacency.

    ``probe`` selects the memory-access shape of a connectivity check:

    * ``"binary"`` — binary search over the sorted slice: ~log2(deg) random
      probes (a software implementation's choice).
    * ``"scan"`` — stream the slice until the target is found or passed:
      the paper's §II-B description ("access all edges between its internal
      vertices and every newly-extended vertex") and what comparator
      hardware without a search datapath does.  Sequential, but re-streams
      hub lists constantly — the traffic the high-priority memory pins.

    Both return identical results; they differ only in the charged trace.
    """
    neighbors = graph.neighbors
    lo = int(graph.offsets[u])
    hi = int(graph.offsets[u + 1])
    if probe == "scan":
        for index in range(lo, hi):
            mem.edge(index, u)
            value = int(neighbors[index])
            if value == target:
                return True
            if value > target:  # sorted slice: target cannot appear later
                return False
        return False
    while lo < hi:
        mid = (lo + hi) // 2
        mem.edge(mid, u)
        value = int(neighbors[mid])
        if value == target:
            return True
        if value < target:
            lo = mid + 1
        else:
            hi = mid
    return False


def check_candidate(
    graph: "CSRGraph",
    vertices: tuple[int, ...],
    member_idx: int,
    candidate: int,
    clique_only: bool,
    mem: MemoryModel,
    probe: str = "binary",
) -> tuple[bool, int]:
    """Run the full extend-check on one candidate.

    Returns ``(accepted, column)`` where ``column`` is the adjacency bitmask
    of ``candidate`` over the embedding members.  Rejections happen for
    (in cost order): ID-canonicality failure (free — the IDs are already in
    the pipeline registers), duplicate proposal (``candidate`` adjacent to
    an earlier member, detected by the connectivity checks), or, when
    ``clique_only``, a missing edge to any member.

    Each connectivity check reads the *member's* CSR record and
    binary-searches the member's adjacency slice — the Fig. 2(b) access
    pattern (see the module docstring).
    """
    if not id_checks_pass(vertices, member_idx, candidate):
        return False, 0
    column = 1 << member_idx
    for i, member in enumerate(vertices):
        if i == member_idx:
            continue
        # Random vertex access: the member's offsets locate its slice.
        mem.vertex(member)
        adjacent = _search_adjacency(graph, member, candidate, mem, probe)
        if adjacent:
            if i < member_idx:
                # First-neighbour violation: this set is generated from
                # member ``i`` instead; drop the duplicate.
                return False, 0
            column |= 1 << i
        elif clique_only:
            return False, 0
    return True, column


def run_dfs(
    graph: "CSRGraph",
    app: "Application",
    mem: MemoryModel | None = None,
    roots: Iterable[int] | None = None,
) -> "Application":
    """Depth-first enumeration (the Fractal / GRAMER execution model §V-A).

    Every initial embedding (vertex) is recursively extended to the
    application's maximum size before the next root starts; intermediate
    embeddings live only on the stack, never in off-chip storage.
    """
    mem = mem if mem is not None else NullMemory()
    app.prepare(graph)
    root_iter = roots if roots is not None else range(graph.num_vertices)
    clique_only = app.clique_only
    for root in root_iter:
        if not app.root_filter(graph, root):
            continue
        stack = [Frame((int(root),), (0,))]
        while stack:
            frame = stack[-1]
            mem.depth = frame.size
            candidate = advance_frame(graph, frame, mem)
            if candidate is None:
                stack.pop()
                continue
            app.candidates_checked += 1
            accepted, column = check_candidate(
                graph, frame.vertices, frame.member_idx, candidate,
                clique_only, mem,
            )
            if not accepted:
                continue
            vertices = frame.vertices + (candidate,)
            columns = frame.columns + (column,)
            if not app.filter(graph, vertices, columns):
                continue
            app.process(graph, vertices, columns)
            if len(vertices) < app.max_vertices and app.aggregate_filter(
                graph, vertices, columns
            ):
                stack.append(Frame(vertices, columns))
    app.finalize(graph)
    return app


class FrontierOverflowError(RuntimeError):
    """Raised when a BFS frontier outgrows the configured limit.

    The BFS model's defining weakness (§V-A): intermediate embeddings must be
    materialised, and "a modest graph ... can quickly generate trillions of
    embeddings".  The limit turns that failure mode into a typed error, which
    the RStream baseline maps to the paper's 'N/A — out of disk' cells.
    """


def run_bfs(
    graph: "CSRGraph",
    app: "Application",
    mem: MemoryModel | None = None,
    max_frontier: int = 10_000_000,
    frontier_observer=None,
) -> "Application":
    """Level-synchronous enumeration (the Arabesque / RStream model §V-A).

    Materialises every intermediate frontier.  ``frontier_observer(size,
    count, candidates)`` is invoked per completed level — ``count`` accepted
    embeddings of that size, ``candidates`` raw extension candidates the
    level generated — so the RStream disk model can charge both the
    intermediate-embedding traffic and the join-intermediate tuples its
    relational plan materialises.
    """
    mem = mem if mem is not None else NullMemory()
    app.prepare(graph)
    clique_only = app.clique_only
    frontier: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
        ((v,), (0,))
        for v in range(graph.num_vertices)
        if app.root_filter(graph, v)
    ]
    size = 1
    while frontier and size < app.max_vertices:
        candidates_before = app.candidates_checked
        next_frontier: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for vertices, columns in frontier:
            if not app.aggregate_filter(graph, vertices, columns):
                continue
            frame = Frame(vertices, columns)
            mem.depth = frame.size
            while True:
                candidate = advance_frame(graph, frame, mem)
                if candidate is None:
                    break
                app.candidates_checked += 1
                accepted, column = check_candidate(
                    graph, vertices, frame.member_idx, candidate,
                    clique_only, mem,
                )
                if not accepted:
                    continue
                new_vertices = vertices + (candidate,)
                new_columns = columns + (column,)
                if not app.filter(graph, new_vertices, new_columns):
                    continue
                app.process(graph, new_vertices, new_columns)
                next_frontier.append((new_vertices, new_columns))
                if len(next_frontier) > max_frontier:
                    raise FrontierOverflowError(
                        f"frontier at size {size + 1} exceeded "
                        f"{max_frontier} embeddings"
                    )
        if frontier_observer is not None:
            frontier_observer(
                size + 1,
                len(next_frontier),
                app.candidates_checked - candidates_before,
            )
        frontier = next_frontier
        size += 1
    app.finalize(graph)
    return app
