"""Canonical pattern codes for small subgraphs.

A *pattern* is a small graph considered up to isomorphism (plus vertex
labels for FSM).  The Process primitives of Table I emit ``(P(e), ...)``
tuples, so every application needs a cheap canonical form for subgraphs of a
handful of vertices.  Mining embeddings never exceed the maximum embedding
size (≤ 5 in the paper's evaluation, ≤ 8 supported here), so brute-force
minimisation over vertex permutations with memoisation is both exact and
fast.

A pattern is encoded as ``PatternCode(size, adjacency, labels)`` where
``adjacency`` packs the upper-triangular adjacency matrix row-major into an
int (bit ``index(i, j)`` set when vertices ``i < j`` are adjacent) and
``labels`` is the label tuple in canonical vertex order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations, permutations
from typing import Sequence

__all__ = [
    "PatternCode",
    "canonical_code",
    "code_from_columns",
    "pattern_name",
    "MAX_PATTERN_SIZE",
]

MAX_PATTERN_SIZE = 8


@dataclass(frozen=True, order=True)
class PatternCode:
    """Canonical (isomorphism-invariant) encoding of a small pattern."""

    size: int
    adjacency: int
    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        # Codes are interned by the canonicalization caches and then key
        # per-embedding Counter updates; precomputing the hash avoids
        # rebuilding the field tuple on every update.
        object.__setattr__(
            self, "_cached_hash", hash((self.size, self.adjacency, self.labels))
        )

    def __hash__(self) -> int:
        return self._cached_hash  # type: ignore[attr-defined, no-any-return]

    @property
    def num_edges(self) -> int:
        """Number of edges in the pattern."""
        return bin(self.adjacency).count("1")

    @property
    def is_clique(self) -> bool:
        """Whether the pattern is the complete graph on ``size`` vertices."""
        return self.num_edges == self.size * (self.size - 1) // 2

    @property
    def is_connected(self) -> bool:
        """Whether the pattern is connected."""
        if self.size == 0:
            return False
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for j in range(self.size):
                if j not in seen and i != j and self._adjacent(i, j):
                    seen.add(j)
                    stack.append(j)
        return len(seen) == self.size

    def _adjacent(self, i: int, j: int) -> bool:
        if i > j:
            i, j = j, i
        return bool(self.adjacency >> _triangle_index(self.size, i, j) & 1)

    def edges(self) -> list[tuple[int, int]]:
        """Edge list of the pattern on vertices ``0..size-1``."""
        return [
            (i, j)
            for i, j in combinations(range(self.size), 2)
            if self._adjacent(i, j)
        ]

    def __str__(self) -> str:
        name = pattern_name(self)
        label_part = (
            "" if all(lab == 0 for lab in self.labels) else f" labels={self.labels}"
        )
        return f"<{name}{label_part}>"


def _triangle_index(size: int, i: int, j: int) -> int:
    """Bit position of pair ``(i, j)`` with ``i < j`` in the packed triangle."""
    # Row-major upper triangle: row i contributes (size-1-i) bits.
    return i * size - i * (i + 1) // 2 + (j - i - 1)


@lru_cache(maxsize=262144)
def _intern(code: PatternCode) -> PatternCode:
    """Map value-equal codes to one representative instance.

    ``_canonicalize`` is memoized on the *raw* adjacency mask, so distinct
    raw masks of the same pattern would otherwise each hold their own
    (value-equal) ``PatternCode``; interning restores identity equality,
    which lets dict/Counter lookups skip ``__eq__`` entirely.
    """
    return code


@lru_cache(maxsize=262144)
def _canonicalize(size: int, adjacency: int, labels: tuple[int, ...]) -> PatternCode:
    best: tuple[tuple[int, ...], int] | None = None
    pairs = list(combinations(range(size), 2))
    adj = [
        [False] * size
        for _ in range(size)
    ]
    for bit, (i, j) in enumerate(pairs):
        if adjacency >> bit & 1:
            adj[i][j] = adj[j][i] = True
    for perm in permutations(range(size)):
        # perm maps new position -> old vertex.
        perm_labels = tuple(labels[perm[i]] for i in range(size))
        mask = 0
        for bit, (i, j) in enumerate(pairs):
            if adj[perm[i]][perm[j]]:
                mask |= 1 << bit
        key = (perm_labels, mask)
        if best is None or key < best:
            best = key
    assert best is not None
    return _intern(PatternCode(size=size, adjacency=best[1], labels=best[0]))


def canonical_code(
    edges: Sequence[tuple[int, int]],
    size: int,
    labels: Sequence[int] | None = None,
) -> PatternCode:
    """Canonical code of the pattern with ``size`` vertices and ``edges``.

    ``edges`` uses local vertex indices ``0..size-1``.
    """
    if size > MAX_PATTERN_SIZE:
        raise ValueError(
            f"pattern size {size} exceeds MAX_PATTERN_SIZE={MAX_PATTERN_SIZE}"
        )
    mask = 0
    for u, v in edges:
        if u == v or not (0 <= u < size and 0 <= v < size):
            raise ValueError(f"bad edge ({u}, {v}) for size {size}")
        if u > v:
            u, v = v, u
        mask |= 1 << _triangle_index(size, u, v)
    label_tuple = tuple(labels) if labels is not None else (0,) * size
    if len(label_tuple) != size:
        raise ValueError("labels must have one entry per pattern vertex")
    return _canonicalize(size, mask, label_tuple)


@lru_cache(maxsize=262144)
def _code_from_column_tuple(
    columns: tuple[int, ...], labels: tuple[int, ...] | None
) -> PatternCode:
    size = len(columns)
    edges = [
        (j, i)
        for i in range(size)
        for j in range(i)
        if columns[i] >> j & 1
    ]
    return canonical_code(edges, size, labels)


def code_from_columns(
    columns: Sequence[int], labels: Sequence[int] | None = None
) -> PatternCode:
    """Canonical code from per-vertex adjacency columns.

    ``columns[i]`` is a bitmask over indices ``< i`` marking which earlier
    embedding members vertex ``i`` is adjacent to — the representation the
    mining engine accumulates incrementally during extend-check (one bit per
    connectivity check, no extra memory traffic).

    Memoized on the (columns, labels) pair: embeddings repeat a tiny set of
    column shapes (bounded by ``MAX_PATTERN_SIZE``), so mining workloads hit
    the cache almost always and skip the edge-list rebuild.
    """
    return _code_from_column_tuple(
        tuple(columns), tuple(labels) if labels is not None else None
    )


_NAMED_PATTERNS: dict[tuple[int, int], str] = {}


def _register(name: str, size: int, edges: list[tuple[int, int]]) -> None:
    code = canonical_code(edges, size)
    _NAMED_PATTERNS[(code.size, code.adjacency)] = name


_register("vertex", 1, [])
_register("edge", 2, [(0, 1)])
_register("wedge", 3, [(0, 1), (1, 2)])
_register("triangle", 3, [(0, 1), (1, 2), (0, 2)])
_register("3-path", 4, [(0, 1), (1, 2), (2, 3)])
_register("3-star", 4, [(0, 1), (0, 2), (0, 3)])
_register("4-cycle", 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
_register("tailed-triangle", 4, [(0, 1), (1, 2), (0, 2), (2, 3)])
_register("diamond", 4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)])
_register("4-clique", 4, [(i, j) for i, j in combinations(range(4), 2)])
_register("5-clique", 5, [(i, j) for i, j in combinations(range(5), 2)])


def pattern_name(code: PatternCode) -> str:
    """Human-readable name for well-known unlabeled patterns."""
    name = _NAMED_PATTERNS.get((code.size, code.adjacency))
    if name is not None:
        return name
    return f"pattern(n={code.size}, m={code.num_edges}, adj={code.adjacency:#x})"
