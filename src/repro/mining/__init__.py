"""Mining core: canonicality, patterns, the extend-check engine, and apps."""

from .apps import (
    Application,
    CliqueFinding,
    FrequentSubgraphMining,
    MiningResult,
    MotifCounting,
    SubgraphMatching,
    make_app,
)
from .export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    result_to_records,
    save_result,
)
from .canonical import canonical_order, is_canonical_embedding
from .embedding import Embedding
from .engine import (
    Frame,
    FrontierOverflowError,
    MemoryModel,
    NullMemory,
    run_bfs,
    run_dfs,
)
from .patterns import PatternCode, canonical_code, code_from_columns, pattern_name

__all__ = [
    "Application",
    "CliqueFinding",
    "FrequentSubgraphMining",
    "MiningResult",
    "MotifCounting",
    "SubgraphMatching",
    "make_app",
    "load_result",
    "result_from_json",
    "result_to_csv",
    "result_to_json",
    "result_to_records",
    "save_result",
    "canonical_order",
    "is_canonical_embedding",
    "Embedding",
    "Frame",
    "FrontierOverflowError",
    "MemoryModel",
    "NullMemory",
    "run_bfs",
    "run_dfs",
    "PatternCode",
    "canonical_code",
    "code_from_columns",
    "pattern_name",
]
