"""GRAMER reproduction: a locality-aware graph mining accelerator (MICRO 2020).

Layout
------
``repro.graph``
    CSR graphs, synthetic generators, IO, statistics, reordering.
``repro.mining``
    Embedding-centric mining engine (Algorithm 1): canonicality, patterns,
    DFS/BFS drivers, the CF / MC / FSM applications.
``repro.locality``
    The extension-locality analyses: ON_k occurrence numbers (Eq. 1),
    memory-trace capture, top-x% access-share studies.
``repro.memory``
    Memory substrate: set-associative caches, replacement policies,
    scratchpads, DRAM/disk models, and the locality-aware memory hierarchy.
``repro.accel``
    The GRAMER accelerator: configuration, cycle-level simulator
    (PUs, slots, ancestor buffers, work stealing), energy / clock /
    resource models.
``repro.processing``
    Vertex-centric graph processing (BFS, SSSP, CC, PageRank) — the
    paper's §II-B contrast class, sharing the mining engine's memory
    instrumentation.
``repro.baselines``
    Fractal-model (DFS, CPU cache hierarchy) and RStream-model (BFS, disk)
    baselines.
``repro.experiments``
    One module per paper table/figure plus the dataset registry.
"""

from repro.graph import CSRGraph
from repro.mining import (
    CliqueFinding,
    FrequentSubgraphMining,
    MiningResult,
    MotifCounting,
    make_app,
    run_bfs,
    run_dfs,
)
from repro.mining.apps import SubgraphMatching

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "CliqueFinding",
    "FrequentSubgraphMining",
    "MiningResult",
    "MotifCounting",
    "SubgraphMatching",
    "make_app",
    "run_bfs",
    "run_dfs",
    "__version__",
]
