"""Offline analyzer for access traces: taxonomy, reuse distance, utilization.

Turns the raw :class:`~repro.obs.access.AccessTrace` event stream into the
``gramer memprofile`` report: a per-region traffic taxonomy in the style
of Dann et al.'s memory-access-pattern studies (arXiv:2010.13619,
2104.07776), exact Mattson stack-distance (reuse-distance) histograms,
and cache-line spatial-utilization scores.

Traffic channel
---------------
For the data regions (``adjacency``, ``on1-rank``, ``embedding``) the
analyzer looks at the **off-chip channel** — events with
``level == "offchip"``, i.e. the requests that left each backend's
locality-capture structure (GRAMER: LAMH miss fills in rank space; CPU
baselines: L2-miss fills; RStream embeddings: SSD spills).  That is the
stream a DRAM controller sees, and the boundary at which the paper's
locality claim is testable.  The on-chip bookkeeping regions
(``ancestor-buffer``, ``priority-cache``) are analyzed over all of their
events.

Sequential / strided / random
-----------------------------
An access is **sequential** when it lands in (or directly after) one of
the ``streams`` most-recently-open DRAM rows of ``row_bytes`` bytes — an
open-row/stream-prefetcher model: such a request is serviced as a row
hit or a trivially prefetchable next-row.  A non-sequential access whose
address delta repeats the stream's previous delta is **strided**;
everything else is **random**.  The defaults (1 KiB rows, 8 tracked
streams) model a modest DDR row-buffer + stream-detector front end; the
request-level channels in tests use line-sized rows.

Reuse distance
--------------
Exact Mattson stack distance at cache-line granularity: the number of
*distinct* other lines referenced between consecutive references to the
same line (0 = immediate re-reference).  Cold (compulsory) first
references are counted separately and excluded from the percentiles.
The implementation is the classic O(n log n) ordered-structure algorithm
(a Fenwick tree over access timestamps marking each line's latest
reference); ``tests/obs/test_reuse_distance.py`` pins it against a
brute-force oracle, including under Hypothesis-generated streams.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .access import ACCESS_SCHEMA_VERSION, AccessEvent, AccessTrace, LEVELS
from .metrics import percentile

__all__ = [
    "DEFAULT_ROW_BYTES",
    "DEFAULT_ROW_STREAMS",
    "DEFAULT_LINE_BYTES",
    "REGION_CHANNEL_LEVEL",
    "classify_accesses",
    "run_length_stats",
    "stack_distances",
    "reuse_profile",
    "spatial_utilization",
    "taxonomy",
    "analyze_trace",
    "compare_reports",
    "aggregate_reports",
]

DEFAULT_ROW_BYTES = 1024
DEFAULT_ROW_STREAMS = 8
DEFAULT_LINE_BYTES = 64

#: Which service level carries each region's *traffic* stream.  ``None``
#: means the region is an on-chip structure analyzed over all its events.
REGION_CHANNEL_LEVEL: dict[str, str | None] = {
    "adjacency": "offchip",
    "on1-rank": "offchip",
    "embedding": "offchip",
    "ancestor-buffer": None,
    "priority-cache": None,
}

_CLASSES = ("sequential", "strided", "random")


def classify_accesses(
    addresses: Sequence[int],
    row_bytes: int = DEFAULT_ROW_BYTES,
    streams: int = DEFAULT_ROW_STREAMS,
) -> list[str]:
    """Label each access ``sequential`` / ``strided`` / ``random``.

    The open-row table holds the ``streams`` most recently used rows in
    LRU order; an access to an open row or to the row directly after one
    is sequential (row hit / next-row stream).  Among the remaining
    accesses, a repeat of the stream's previous address delta is strided.
    """
    if row_bytes < 1 or streams < 1:
        raise ValueError("row_bytes and streams must both be >= 1")
    # dict preserves insertion order; re-inserting on hit keeps LRU order.
    table: dict[int, None] = {}
    labels: list[str] = []
    prev_address: int | None = None
    prev_delta: int | None = None
    for address in addresses:
        row = address // row_bytes
        if row in table or (row - 1) in table:
            labels.append("sequential")
            table.pop(row, None)
        else:
            delta = None if prev_address is None else address - prev_address
            if delta is not None and delta == prev_delta and delta != 0:
                labels.append("strided")
            else:
                labels.append("random")
        table[row] = None
        if len(table) > streams:
            del table[next(iter(table))]
        if prev_address is not None:
            prev_delta = address - prev_address
        prev_address = address
    return labels


def run_length_stats(labels: Sequence[str]) -> dict[str, dict[str, float]]:
    """Maximal same-class run lengths, summarized per class."""
    runs: dict[str, list[int]] = {cls: [] for cls in _CLASSES}
    current: str | None = None
    length = 0
    for label in labels:
        if label == current:
            length += 1
        else:
            if current is not None:
                runs[current].append(length)
            current = label
            length = 1
    if current is not None:
        runs[current].append(length)
    return {
        cls: {
            "count": float(len(lengths)),
            "mean": sum(lengths) / len(lengths) if lengths else 0.0,
            "max": float(max(lengths)) if lengths else 0.0,
        }
        for cls, lengths in runs.items()
    }


def taxonomy(
    addresses: Sequence[int],
    row_bytes: int = DEFAULT_ROW_BYTES,
    streams: int = DEFAULT_ROW_STREAMS,
) -> dict[str, object]:
    """Class shares + run-length stats for one address stream."""
    labels = classify_accesses(addresses, row_bytes, streams)
    total = len(labels)
    shares = {
        cls: (labels.count(cls) / total if total else 0.0)
        for cls in _CLASSES
    }
    return {**shares, "runs": run_length_stats(labels)}


def stack_distances(lines: Sequence[int]) -> list[int | None]:
    """Exact Mattson stack distance per access (``None`` = cold miss).

    ``lines[i]`` is the cache line of access ``i``; the result's entry
    ``i`` is the number of distinct *other* lines referenced since the
    previous reference to ``lines[i]`` — the LRU stack depth the access
    would hit at.  O(n log n) via a Fenwick tree over timestamps that
    marks, for every line, only its most recent reference.
    """
    n = len(lines)
    tree = [0] * (n + 1)

    def add(index: int, delta: int) -> None:
        index += 1
        while index <= n:
            tree[index] += delta
            index += index & -index

    def prefix(index: int) -> int:
        # Sum of marks at timestamps 0..index (inclusive).
        index += 1
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & -index
        return total

    last: dict[int, int] = {}
    out: list[int | None] = []
    for now, line in enumerate(lines):
        prev = last.get(line)
        if prev is None:
            out.append(None)
        else:
            # Marked timestamps strictly between prev and now are the
            # latest references of the distinct lines seen in between.
            out.append(prefix(now - 1) - prefix(prev))
            add(prev, -1)
        add(now, 1)
        last[line] = now
    return out


def _reuse_bucket(distance: int) -> str:
    """Log2 histogram bucket label ("0", "1", "2-3", "4-7", ...)."""
    if distance <= 0:
        return "0"
    bits = distance.bit_length()
    low = 1 << (bits - 1)
    high = (1 << bits) - 1
    return str(low) if low == high else f"{low}-{high}"


def reuse_profile(
    addresses: Sequence[int], line_bytes: int = DEFAULT_LINE_BYTES
) -> dict[str, object]:
    """Reuse-distance summary of one byte-address stream.

    Distances are computed at ``line_bytes`` granularity; cold misses are
    reported but excluded from the percentiles.  ``median``/``p90`` are
    ``None`` for a stream with no re-references (rendered as ∞).
    """
    lines = [address // line_bytes for address in addresses]
    distances = [d for d in stack_distances(lines) if d is not None]
    histogram: dict[str, int] = {}
    for distance in distances:
        bucket = _reuse_bucket(distance)
        histogram[bucket] = histogram.get(bucket, 0) + 1
    ordered = dict(
        sorted(histogram.items(), key=lambda item: int(item[0].split("-")[0]))
    )
    return {
        "cold": len(lines) - len(distances),
        "refs": len(distances),
        "median": percentile(distances, 50) if distances else None,
        "p90": percentile(distances, 90) if distances else None,
        "histogram": ordered,
    }


def spatial_utilization(
    events: Iterable[AccessEvent], line_bytes: int = DEFAULT_LINE_BYTES
) -> float:
    """Fraction of fetched cache-line bytes the stream actually demanded.

    Every line touched by any event is fetched whole; utilization is the
    union of demanded bytes over ``lines × line_bytes``.  1.0 means the
    stream consumes entire lines (dense/streaming); 8-byte pointer
    chasing over 64-byte lines bottoms out at 0.125.
    """
    full: set[int] = set()
    partial: dict[int, set[int]] = {}
    for event in events:
        start = event.address
        end = start + max(1, event.size)
        for line in range(start // line_bytes, (end - 1) // line_bytes + 1):
            if line in full:
                continue
            line_start = line * line_bytes
            lo = max(start, line_start) - line_start
            hi = min(end, line_start + line_bytes) - line_start
            if hi - lo >= line_bytes:
                full.add(line)
                partial.pop(line, None)
                continue
            touched = partial.setdefault(line, set())
            touched.update(range(lo, hi))
            if len(touched) >= line_bytes:
                full.add(line)
                del partial[line]
    total = len(full) + len(partial)
    if not total:
        return 0.0
    used = len(full) * line_bytes + sum(
        len(touched) for touched in partial.values()
    )
    return used / (total * line_bytes)


def analyze_trace(
    trace: AccessTrace,
    row_bytes: int = DEFAULT_ROW_BYTES,
    streams: int = DEFAULT_ROW_STREAMS,
    line_bytes: int = DEFAULT_LINE_BYTES,
) -> dict[str, object]:
    """Full per-region locality report of one trace (JSON-friendly)."""
    regions: dict[str, object] = {}
    for region in trace.regions():
        all_events = trace.select(region=region)
        channel_level = REGION_CHANNEL_LEVEL.get(region)
        channel = (
            [e for e in all_events if e.level == channel_level]
            if channel_level is not None
            else all_events
        )
        addresses = [event.address for event in channel]
        levels = {
            level: sum(1 for e in all_events if e.level == level)
            for level in LEVELS
        }
        regions[region] = {
            "events": len(all_events),
            "levels": levels,
            "traffic": {
                "channel_level": channel_level or "all",
                "requests": len(channel),
                "bytes": sum(event.size for event in channel),
                "reads": sum(1 for e in channel if e.rw == "r"),
                "writes": sum(1 for e in channel if e.rw == "w"),
                "taxonomy": taxonomy(addresses, row_bytes, streams),
                "reuse": reuse_profile(addresses, line_bytes),
                "spatial_utilization": spatial_utilization(
                    channel, line_bytes
                ),
            },
        }
    return {
        "schema_version": ACCESS_SCHEMA_VERSION,
        "meta": dict(trace.meta),
        "channel": {
            "row_bytes": row_bytes,
            "streams": streams,
            "line_bytes": line_bytes,
        },
        "events": len(trace),
        "regions": regions,
    }


def _region_row(payload: Mapping[str, object], region: str) -> dict[str, object]:
    info = payload["regions"][region]  # type: ignore[index]
    traffic = info["traffic"]
    tax = traffic["taxonomy"]
    reuse = traffic["reuse"]
    return {
        "requests": traffic["requests"],
        "bytes": traffic["bytes"],
        "sequential": tax["sequential"],
        "strided": tax["strided"],
        "random": tax["random"],
        "median_reuse": reuse["median"],
        "p90_reuse": reuse["p90"],
        "cold": reuse["cold"],
        "spatial_utilization": traffic["spatial_utilization"],
    }


def compare_reports(
    label_a: str,
    payload_a: Mapping[str, object],
    label_b: str,
    payload_b: Mapping[str, object],
) -> dict[str, object]:
    """Structured diff of two reports over their shared + disjoint regions."""
    regions_a = set(payload_a["regions"])  # type: ignore[arg-type]
    regions_b = set(payload_b["regions"])  # type: ignore[arg-type]
    diff: dict[str, object] = {}
    for region in [r for r in REGION_CHANNEL_LEVEL if r in regions_a | regions_b]:
        row_a = _region_row(payload_a, region) if region in regions_a else None
        row_b = _region_row(payload_b, region) if region in regions_b else None
        entry: dict[str, object] = {"a": row_a, "b": row_b}
        if row_a is not None and row_b is not None:
            entry["delta"] = {
                "sequential": row_b["sequential"] - row_a["sequential"],
                "spatial_utilization": (
                    row_b["spatial_utilization"] - row_a["spatial_utilization"]
                ),
                "median_reuse": (
                    row_b["median_reuse"] - row_a["median_reuse"]
                    if row_a["median_reuse"] is not None
                    and row_b["median_reuse"] is not None
                    else None
                ),
            }
        diff[region] = entry
    return {"a": label_a, "b": label_b, "regions": diff}


def aggregate_reports(
    items: Sequence[tuple[str, Mapping[str, object]]],
) -> list[dict[str, object]]:
    """Flatten ``(label, payload)`` pairs into per-region table rows."""
    rows: list[dict[str, object]] = []
    for label, payload in items:
        for region in payload["regions"]:  # type: ignore[union-attr]
            rows.append(
                {"label": label, "region": region, **_region_row(payload, region)}
            )
    return rows
