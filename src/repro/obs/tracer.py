"""Event tracer — structured spans and instants, JSONL and Chrome-trace out.

The second pillar of the observability subsystem.  Producers (the
simulator instrument, the executor, the timeline sampler) emit
:class:`TraceEvent` records through a :class:`Tracer`; the tracer buffers
them and serializes on demand to

* **JSONL** — one JSON object per line, schema-validated by
  :func:`validate_event`, for ad-hoc analysis with ``jq``/pandas; and
* **Chrome trace format** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and https://ui.perfetto.dev load directly.

Timestamps are microseconds in the Chrome format.  Simulator producers
use *cycles* as the time base and render one cycle as one microsecond —
absolute wall time is meaningless inside a cycle-level model, while the
relative shape (which PU stalls when, how long a steal waits) is exactly
what the viewer should show.  Executor events use real wall-clock
microseconds; the two domains are kept apart by process id:

====================  ===========================================
pid                   track
====================  ===========================================
``PID_EXECUTOR`` (1)  executor job lifecycle (wall time)
``PID_TIMELINE`` (2)  windowed counters (sim cycles)
``SIM_PID_BASE+p``    processing unit ``p`` (sim cycles), one
                      thread per slot
====================  ===========================================

:class:`NullTracer` is the disabled fast path: every emit method is a
no-op and ``enabled`` is ``False``, so hot-loop call sites can skip even
argument construction.  A disabled run executes the exact instruction
stream of an uninstrumented one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = [
    "CATEGORY_EXECUTOR",
    "CATEGORY_MEMORY",
    "CATEGORY_PU",
    "CATEGORY_STEAL",
    "NullTracer",
    "PID_EXECUTOR",
    "PID_TIMELINE",
    "SIM_PID_BASE",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceSchemaError",
    "Tracer",
    "read_jsonl",
    "validate_event",
]

#: Version stamped into the JSONL header line.  Bump when the per-event
#: schema changes shape; :func:`read_jsonl` rejects newer versions and
#: warns (best-effort parse) on older or headerless files.
TRACE_SCHEMA_VERSION = 1

CATEGORY_PU = "pu"
CATEGORY_MEMORY = "memory"
CATEGORY_STEAL = "steal"
CATEGORY_EXECUTOR = "executor"

PID_EXECUTOR = 1
PID_TIMELINE = 2
SIM_PID_BASE = 10

_PHASES = frozenset({"X", "i", "C", "M"})


@dataclass(frozen=True)
class TraceEvent:
    """One Chrome-trace event.

    ``ph`` is the phase code: ``"X"`` complete span (has ``dur``),
    ``"i"`` instant, ``"C"`` counter, ``"M"`` metadata.
    """

    name: str
    category: str
    ph: str
    ts_us: float
    pid: int
    tid: int
    dur_us: float = 0.0
    args: Mapping[str, object] = field(default_factory=dict)

    def as_chrome(self) -> dict[str, object]:
        record: dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.ph == "X":
            record["dur"] = self.dur_us
        if self.ph == "i":
            record["s"] = "t"  # instant scoped to its thread track
        if self.args:
            record["args"] = dict(self.args)
        return record


def validate_event(record: Mapping[str, object]) -> list[str]:
    """Schema-check one serialized event; return problems (empty = valid)."""
    problems: list[str] = []
    for key, kinds in (
        ("name", (str,)),
        ("cat", (str,)),
        ("ph", (str,)),
        ("ts", (int, float)),
        ("pid", (int,)),
        ("tid", (int,)),
    ):
        if key not in record:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(record[key], kinds) or isinstance(
            record[key], bool
        ):
            problems.append(
                f"key {key!r} has type {type(record[key]).__name__}"
            )
    phase = record.get("ph")
    if isinstance(phase, str) and phase not in _PHASES:
        problems.append(f"unknown phase {phase!r}")
    if phase == "X":
        duration = record.get("dur")
        if not isinstance(duration, (int, float)) or isinstance(
            duration, bool
        ):
            problems.append("complete event ('X') requires numeric 'dur'")
        elif duration < 0:
            problems.append(f"negative duration {duration}")
    ts = record.get("ts")
    if isinstance(ts, (int, float)) and not isinstance(ts, bool) and ts < 0:
        problems.append(f"negative timestamp {ts}")
    args = record.get("args")
    if args is not None and not isinstance(args, Mapping):
        problems.append("'args' must be an object")
    return problems


class Tracer:
    """Buffering trace sink with Chrome-trace and JSONL serialization."""

    enabled = True

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def complete(
        self,
        name: str,
        category: str,
        ts_us: float,
        dur_us: float,
        pid: int,
        tid: int,
        **args: object,
    ) -> None:
        """Emit a span ('X'): something with a start and a duration."""
        self.emit(
            TraceEvent(name, category, "X", ts_us, pid, tid, dur_us, args)
        )

    def instant(
        self,
        name: str,
        category: str,
        ts_us: float,
        pid: int,
        tid: int,
        **args: object,
    ) -> None:
        """Emit an instant ('i'): a point event with no duration."""
        self.emit(TraceEvent(name, category, "i", ts_us, pid, tid, 0.0, args))

    def counter(
        self,
        name: str,
        category: str,
        ts_us: float,
        pid: int,
        values: Mapping[str, float],
    ) -> None:
        """Emit a counter ('C') sample — renders as a stacked area track."""
        self.emit(
            TraceEvent(name, category, "C", ts_us, pid, 0, 0.0, dict(values))
        )

    def metadata(self, pid: int, tid: int, key: str, value: str) -> None:
        """Emit process/thread naming metadata ('M') for the viewer."""
        self.emit(
            TraceEvent(key, "__metadata", "M", 0.0, pid, tid, 0.0,
                       {"name": value})
        )

    def categories(self) -> set[str]:
        """Distinct non-metadata categories emitted so far."""
        return {e.category for e in self._events if e.ph != "M"}

    def chrome_payload(self) -> dict[str, object]:
        """The ``{"traceEvents": ...}`` object, events sorted by timestamp.

        Metadata events sort first (ts 0); the rest are ordered by
        ``ts`` then emission order, which keeps ``ts`` monotone
        non-decreasing across the file — the property the trace tests
        assert and some stream-parsing viewers rely on.
        """
        indexed = sorted(
            enumerate(self._events),
            key=lambda pair: (pair[1].ph != "M", pair[1].ts_us, pair[0]),
        )
        return {
            "traceEvents": [event.as_chrome() for _, event in indexed],
            "displayTimeUnit": "ms",
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Serialize the Chrome-trace JSON to ``path`` (parents created)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.chrome_payload(), separators=(",", ":"))
        )
        return target

    def write_jsonl(self, path: str | Path) -> Path:
        """Serialize header + one event per line, in emission order.

        The first line is a schema header
        (``{"schema_version": N, "kind": "gramer-trace"}``) so readers
        can detect version skew instead of misparsing events; every
        following line is one Chrome-format event object.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "schema_version": TRACE_SCHEMA_VERSION,
            "kind": "gramer-trace",
        }
        lines = [json.dumps(header, separators=(",", ":"))]
        lines.extend(
            json.dumps(event.as_chrome(), separators=(",", ":"))
            for event in self._events
        )
        target.write_text("\n".join(lines) + "\n")
        return target


class TraceSchemaError(ValueError):
    """A serialized JSONL trace is unreadable by this code version."""


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Load a JSONL trace's event records, enforcing the version contract.

    A header written by a *newer* schema raises :class:`TraceSchemaError`
    — misreading fields silently would corrupt any downstream analysis.
    Older versions (or headerless pre-versioning files) log a warning and
    parse best-effort; records failing :func:`validate_event` are dropped
    with a logged count.
    """
    from .log import get_logger

    log = get_logger("obs.tracer")
    source = Path(path)
    lines = [line for line in source.read_text().splitlines() if line.strip()]
    if not lines:
        return []
    first = json.loads(lines[0])
    body = lines
    if isinstance(first, dict) and "schema_version" in first:
        version = first["schema_version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise TraceSchemaError(
                f"{source}: non-integer schema_version {version!r}"
            )
        if version > TRACE_SCHEMA_VERSION:
            raise TraceSchemaError(
                f"{source}: schema_version {version} is newer than "
                f"supported version {TRACE_SCHEMA_VERSION}; upgrade the "
                "reader"
            )
        if version < TRACE_SCHEMA_VERSION:
            log.warning(
                "%s: old trace schema_version %d (current %d); parsing "
                "best-effort",
                source,
                version,
                TRACE_SCHEMA_VERSION,
            )
        body = lines[1:]
    else:
        log.warning(
            "%s: no schema header (pre-versioning trace); parsing "
            "best-effort",
            source,
        )
    records: list[dict[str, object]] = []
    dropped = 0
    for line in body:
        record = json.loads(line)
        if not isinstance(record, dict) or validate_event(record):
            dropped += 1
            continue
        records.append(record)
    if dropped:
        log.warning("%s: dropped %d invalid event line(s)", source, dropped)
    return records


class NullTracer(Tracer):
    """Disabled sink: accepts nothing, costs nothing.

    ``enabled`` is ``False`` so hot paths can skip argument construction
    entirely (``if tracer.enabled: tracer.complete(...)``); even when
    called, every emit method discards its input.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def complete(
        self,
        name: str,
        category: str,
        ts_us: float,
        dur_us: float,
        pid: int,
        tid: int,
        **args: object,
    ) -> None:
        pass

    def instant(
        self,
        name: str,
        category: str,
        ts_us: float,
        pid: int,
        tid: int,
        **args: object,
    ) -> None:
        pass

    def counter(
        self,
        name: str,
        category: str,
        ts_us: float,
        pid: int,
        values: Mapping[str, float],
    ) -> None:
        pass

    def metadata(self, pid: int, tid: int, key: str, value: str) -> None:
        pass
