"""Text profile report — what the numbers say, in one terminal page.

Renders the ``gramer profile`` output: run summary, stall attribution
(where cycles actually went), cache-set pressure (which low-priority sets
thrash), steal-wait latency percentiles, the windowed hit-ratio timeline,
and a per-job wall/cycle breakdown for sweep-style invocations.

Everything is duck-typed through small ``Protocol``\\ s so this module
imports nothing from ``repro.accel`` or ``repro.runtime`` — ``obs``
stays a leaf package any layer can use.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

from .metrics import percentile
from .timeline import TimelineWindow

__all__ = [
    "render_profile",
    "render_memprofile",
    "render_memprofile_markdown",
    "render_memprofile_compare",
    "render_access_table_markdown",
]

_MAX_TIMELINE_ROWS = 24


class _StatsLike(Protocol):
    cycles: int
    compute_cycles: int
    vertex_wait_cycles: int
    edge_wait_cycles: int
    steals: int
    steal_attempts: int
    roots_dispatched: int

    @property
    def vertex_accesses(self) -> int: ...
    @property
    def edge_accesses(self) -> int: ...
    @property
    def vertex_hit_ratio(self) -> float: ...
    @property
    def edge_hit_ratio(self) -> float: ...
    @property
    def dram_accesses(self) -> int: ...
    @property
    def load_imbalance(self) -> float: ...


class _InstrumentLike(Protocol):
    steal_latencies: list[int]

    @property
    def sampler(self) -> "_SamplerLike": ...


class _SamplerLike(Protocol):
    windows: list[TimelineWindow]


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Right-aligned fixed-width table (numbers dominate every column)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _section(title: str, body: str) -> str:
    return f"== {title} ==\n{body}"


def _summary_section(stats: _StatsLike) -> str:
    rows = [
        ("cycles", f"{stats.cycles:,}"),
        ("roots dispatched", f"{stats.roots_dispatched:,}"),
        ("vertex accesses", f"{stats.vertex_accesses:,}"),
        ("vertex hit ratio", f"{stats.vertex_hit_ratio:.4f}"),
        ("edge accesses", f"{stats.edge_accesses:,}"),
        ("edge hit ratio", f"{stats.edge_hit_ratio:.4f}"),
        ("dram accesses", f"{stats.dram_accesses:,}"),
        ("steals / attempts", f"{stats.steals:,} / {stats.steal_attempts:,}"),
        ("load imbalance", f"{stats.load_imbalance:.3f}"),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label.ljust(width)}  {value}" for label, value in rows)


def _stall_section(stats: _StatsLike) -> str:
    sources = sorted(
        (
            ("edge wait", stats.edge_wait_cycles),
            ("vertex wait", stats.vertex_wait_cycles),
            ("compute", stats.compute_cycles),
        ),
        key=lambda pair: -pair[1],
    )
    total = sum(cycles for _, cycles in sources)
    rows = [
        (
            name,
            f"{cycles:,}",
            f"{cycles / total * 100:.1f}%" if total else "-",
        )
        for name, cycles in sources
    ]
    return _table(("source", "slot-cycles", "share"), rows)


def _pressure_section(
    pressure: Mapping[str, Mapping[str, object]],
) -> str:
    rows = []
    for name in sorted(pressure):
        info = pressure[name]
        hot = ", ".join(
            f"#{idx}:{count}"
            for idx, count in info.get("hot_sets", [])  # type: ignore[union-attr]
        )
        rows.append(
            (
                name,
                info.get("sets", 0),
                info.get("evictions", 0),
                info.get("max", 0),
                f"{info.get('mean', 0.0):.2f}",
                hot or "-",
            )
        )
    return _table(
        ("cache", "sets", "evictions", "max/set", "mean/set", "hottest sets"),
        rows,
    )


def _steal_section(latencies: Sequence[int]) -> str:
    if not latencies:
        return "no completed steal waits"
    values = [float(v) for v in latencies]
    rows = [
        (
            len(values),
            f"{percentile(values, 50):.0f}",
            f"{percentile(values, 90):.0f}",
            f"{percentile(values, 99):.0f}",
            f"{max(values):.0f}",
        )
    ]
    return _table(("waits", "p50", "p90", "p99", "max"), rows)


def _timeline_section(windows: Sequence[TimelineWindow]) -> str:
    if not windows:
        return "no closed windows (run shorter than one window)"
    shown = list(windows)
    elided = 0
    if len(shown) > _MAX_TIMELINE_ROWS:
        half = _MAX_TIMELINE_ROWS // 2
        elided = len(shown) - 2 * half
        shown = shown[:half] + shown[-half:]
    rows: list[tuple[object, ...]] = []
    for i, w in enumerate(shown):
        if elided and i == len(shown) // 2:
            rows.append((f"... {elided} windows elided ...", "", "", "", "", ""))
        rows.append(
            (
                f"[{w.start_cycle:,}, {w.end_cycle:,})",
                f"{w.vertex_hit_ratio:.3f}",
                f"{w.edge_hit_ratio:.3f}",
                w.dram_accesses,
                w.steals,
                w.active_slots,
            )
        )
    return _table(
        ("window", "v-hit", "e-hit", "dram", "steals", "slots"), rows
    )


def _jobs_section(jobs: Sequence[Mapping[str, object]]) -> str:
    ordered = sorted(
        jobs,
        key=lambda job: -float(job.get("wall_seconds", 0.0))  # type: ignore[arg-type]
    )
    rows = []
    for job in ordered:
        cycles = job.get("cycles")
        rows.append(
            (
                job.get("name", "?"),
                job.get("backend", "?"),
                f"{float(job.get('wall_seconds', 0.0)):.3f}s",  # type: ignore[arg-type]
                f"{cycles:,}" if isinstance(cycles, int) else "-",
                "hit" if job.get("cached") else "miss",
            )
        )
    return _table(("job", "backend", "wall", "cycles", "cache"), rows)


def render_profile(
    stats: _StatsLike,
    instrument: _InstrumentLike | None = None,
    pressure: Mapping[str, Mapping[str, object]] | None = None,
    jobs: Sequence[Mapping[str, object]] | None = None,
) -> str:
    """Assemble the full text profile from whichever inputs are present."""
    sections = [
        _section("run summary", _summary_section(stats)),
        _section("stall attribution", _stall_section(stats)),
    ]
    if pressure:
        sections.append(_section("cache-set pressure", _pressure_section(pressure)))
    if instrument is not None:
        sections.append(
            _section("steal-wait latency", _steal_section(instrument.steal_latencies))
        )
        sections.append(
            _section("timeline", _timeline_section(instrument.sampler.windows))
        )
    if jobs:
        sections.append(_section("jobs (slowest first)", _jobs_section(jobs)))
    return "\n\n".join(sections)


# -- memprofile (locality report) rendering ---------------------------------
#
# Consumes the JSON-friendly payloads produced by
# ``repro.obs.locality_report.analyze_trace`` — plain mappings, so this
# module stays a leaf and the same payloads round-trip through the
# artifact cache and the ``--format json`` output unchanged.

_MEMPROFILE_HEADERS = (
    "region",
    "requests",
    "bytes",
    "seq",
    "strided",
    "random",
    "med reuse",
    "p90 reuse",
    "cold",
    "line util",
)


def _fmt_share(value: object) -> str:
    return f"{float(value) * 100:.1f}%"  # type: ignore[arg-type]


def _fmt_reuse(value: object) -> str:
    return "inf" if value is None else f"{float(value):.0f}"  # type: ignore[arg-type]


def _memprofile_rows(payload: Mapping[str, object]) -> list[tuple[object, ...]]:
    rows: list[tuple[object, ...]] = []
    regions: Mapping[str, Mapping[str, object]] = payload["regions"]  # type: ignore[assignment]
    for region, info in regions.items():
        traffic: Mapping[str, object] = info["traffic"]  # type: ignore[assignment]
        tax: Mapping[str, object] = traffic["taxonomy"]  # type: ignore[assignment]
        reuse: Mapping[str, object] = traffic["reuse"]  # type: ignore[assignment]
        rows.append(
            (
                region,
                f"{traffic['requests']:,}",
                f"{traffic['bytes']:,}",
                _fmt_share(tax["sequential"]),
                _fmt_share(tax["strided"]),
                _fmt_share(tax["random"]),
                _fmt_reuse(reuse["median"]),
                _fmt_reuse(reuse["p90"]),
                f"{reuse['cold']:,}",
                f"{float(traffic['spatial_utilization']):.3f}",  # type: ignore[arg-type]
            )
        )
    return rows


def _memprofile_title(label: str, payload: Mapping[str, object]) -> str:
    meta: Mapping[str, object] = payload.get("meta", {})  # type: ignore[assignment]
    parts = [
        str(meta[key]) for key in ("app", "graph", "scale") if key in meta
    ]
    suffix = f" ({', '.join(parts)})" if parts else ""
    return f"{label}{suffix}"


def render_memprofile(
    reports: Mapping[str, Mapping[str, object]],
) -> str:
    """Text report: one traffic-taxonomy table per run/backend label."""
    sections = []
    for label, payload in reports.items():
        channel: Mapping[str, object] = payload["channel"]  # type: ignore[assignment]
        body = _table(_MEMPROFILE_HEADERS, _memprofile_rows(payload))
        body += (
            f"\nchannel: {channel['row_bytes']}B rows x "
            f"{channel['streams']} streams, "
            f"{channel['line_bytes']}B lines; "
            f"{payload['events']:,} events"
        )
        sections.append(
            _section(
                f"memory access profile: {_memprofile_title(label, payload)}",
                body,
            )
        )
    return "\n\n".join(sections)


def render_memprofile_markdown(
    reports: Mapping[str, Mapping[str, object]],
) -> str:
    """GitHub-flavoured markdown form of :func:`render_memprofile`."""
    lines: list[str] = []
    for label, payload in reports.items():
        lines.append(f"## {_memprofile_title(label, payload)}")
        lines.append("")
        lines.append("| " + " | ".join(_MEMPROFILE_HEADERS) + " |")
        lines.append("|" + "---|" * len(_MEMPROFILE_HEADERS))
        for row in _memprofile_rows(payload):
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        channel: Mapping[str, object] = payload["channel"]  # type: ignore[assignment]
        lines.append("")
        lines.append(
            f"_channel: {channel['row_bytes']} B rows × "
            f"{channel['streams']} streams, {channel['line_bytes']} B "
            f"lines; {payload['events']:,} events_"
        )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_memprofile_compare(diff: Mapping[str, object]) -> str:
    """Text diff of two reports (``compare_reports`` output)."""
    headers = (
        "region",
        f"seq {diff['a']}",
        f"seq {diff['b']}",
        "Δseq",
        f"med {diff['a']}",
        f"med {diff['b']}",
        f"util {diff['a']}",
        f"util {diff['b']}",
    )
    rows: list[tuple[object, ...]] = []
    regions: Mapping[str, Mapping[str, object]] = diff["regions"]  # type: ignore[assignment]
    for region, entry in regions.items():
        row_a: Mapping[str, object] | None = entry.get("a")  # type: ignore[assignment]
        row_b: Mapping[str, object] | None = entry.get("b")  # type: ignore[assignment]

        def cell(row: Mapping[str, object] | None, key: str, fmt) -> str:
            return "-" if row is None else fmt(row[key])

        delta: Mapping[str, object] | None = entry.get("delta")  # type: ignore[assignment]
        rows.append(
            (
                region,
                cell(row_a, "sequential", _fmt_share),
                cell(row_b, "sequential", _fmt_share),
                _fmt_share(delta["sequential"]) if delta else "-",
                cell(row_a, "median_reuse", _fmt_reuse),
                cell(row_b, "median_reuse", _fmt_reuse),
                cell(row_a, "spatial_utilization", lambda v: f"{float(v):.3f}"),
                cell(row_b, "spatial_utilization", lambda v: f"{float(v):.3f}"),
            )
        )
    return _section(
        f"memory access compare: {diff['a']} vs {diff['b']}",
        _table(headers, rows),
    )


def render_access_table_markdown(
    rows: Sequence[Mapping[str, object]],
) -> str:
    """Markdown table over ``aggregate_reports`` rows (the sweep report)."""
    headers = (
        "cell",
        "region",
        "requests",
        "seq",
        "strided",
        "random",
        "med reuse",
        "line util",
    )
    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(
                (
                    str(row["label"]),
                    str(row["region"]),
                    f"{row['requests']:,}",
                    _fmt_share(row["sequential"]),
                    _fmt_share(row["strided"]),
                    _fmt_share(row["random"]),
                    _fmt_reuse(row["median_reuse"]),
                    f"{float(row['spatial_utilization']):.3f}",  # type: ignore[arg-type]
                )
            )
            + " |"
        )
    return "\n".join(lines) + "\n"
