"""Text profile report — what the numbers say, in one terminal page.

Renders the ``gramer profile`` output: run summary, stall attribution
(where cycles actually went), cache-set pressure (which low-priority sets
thrash), steal-wait latency percentiles, the windowed hit-ratio timeline,
and a per-job wall/cycle breakdown for sweep-style invocations.

Everything is duck-typed through small ``Protocol``\\ s so this module
imports nothing from ``repro.accel`` or ``repro.runtime`` — ``obs``
stays a leaf package any layer can use.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

from .metrics import percentile
from .timeline import TimelineWindow

__all__ = ["render_profile"]

_MAX_TIMELINE_ROWS = 24


class _StatsLike(Protocol):
    cycles: int
    compute_cycles: int
    vertex_wait_cycles: int
    edge_wait_cycles: int
    steals: int
    steal_attempts: int
    roots_dispatched: int

    @property
    def vertex_accesses(self) -> int: ...
    @property
    def edge_accesses(self) -> int: ...
    @property
    def vertex_hit_ratio(self) -> float: ...
    @property
    def edge_hit_ratio(self) -> float: ...
    @property
    def dram_accesses(self) -> int: ...
    @property
    def load_imbalance(self) -> float: ...


class _InstrumentLike(Protocol):
    steal_latencies: list[int]

    @property
    def sampler(self) -> "_SamplerLike": ...


class _SamplerLike(Protocol):
    windows: list[TimelineWindow]


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Right-aligned fixed-width table (numbers dominate every column)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _section(title: str, body: str) -> str:
    return f"== {title} ==\n{body}"


def _summary_section(stats: _StatsLike) -> str:
    rows = [
        ("cycles", f"{stats.cycles:,}"),
        ("roots dispatched", f"{stats.roots_dispatched:,}"),
        ("vertex accesses", f"{stats.vertex_accesses:,}"),
        ("vertex hit ratio", f"{stats.vertex_hit_ratio:.4f}"),
        ("edge accesses", f"{stats.edge_accesses:,}"),
        ("edge hit ratio", f"{stats.edge_hit_ratio:.4f}"),
        ("dram accesses", f"{stats.dram_accesses:,}"),
        ("steals / attempts", f"{stats.steals:,} / {stats.steal_attempts:,}"),
        ("load imbalance", f"{stats.load_imbalance:.3f}"),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label.ljust(width)}  {value}" for label, value in rows)


def _stall_section(stats: _StatsLike) -> str:
    sources = sorted(
        (
            ("edge wait", stats.edge_wait_cycles),
            ("vertex wait", stats.vertex_wait_cycles),
            ("compute", stats.compute_cycles),
        ),
        key=lambda pair: -pair[1],
    )
    total = sum(cycles for _, cycles in sources)
    rows = [
        (
            name,
            f"{cycles:,}",
            f"{cycles / total * 100:.1f}%" if total else "-",
        )
        for name, cycles in sources
    ]
    return _table(("source", "slot-cycles", "share"), rows)


def _pressure_section(
    pressure: Mapping[str, Mapping[str, object]],
) -> str:
    rows = []
    for name in sorted(pressure):
        info = pressure[name]
        hot = ", ".join(
            f"#{idx}:{count}"
            for idx, count in info.get("hot_sets", [])  # type: ignore[union-attr]
        )
        rows.append(
            (
                name,
                info.get("sets", 0),
                info.get("evictions", 0),
                info.get("max", 0),
                f"{info.get('mean', 0.0):.2f}",
                hot or "-",
            )
        )
    return _table(
        ("cache", "sets", "evictions", "max/set", "mean/set", "hottest sets"),
        rows,
    )


def _steal_section(latencies: Sequence[int]) -> str:
    if not latencies:
        return "no completed steal waits"
    values = [float(v) for v in latencies]
    rows = [
        (
            len(values),
            f"{percentile(values, 50):.0f}",
            f"{percentile(values, 90):.0f}",
            f"{percentile(values, 99):.0f}",
            f"{max(values):.0f}",
        )
    ]
    return _table(("waits", "p50", "p90", "p99", "max"), rows)


def _timeline_section(windows: Sequence[TimelineWindow]) -> str:
    if not windows:
        return "no closed windows (run shorter than one window)"
    shown = list(windows)
    elided = 0
    if len(shown) > _MAX_TIMELINE_ROWS:
        half = _MAX_TIMELINE_ROWS // 2
        elided = len(shown) - 2 * half
        shown = shown[:half] + shown[-half:]
    rows: list[tuple[object, ...]] = []
    for i, w in enumerate(shown):
        if elided and i == len(shown) // 2:
            rows.append((f"... {elided} windows elided ...", "", "", "", "", ""))
        rows.append(
            (
                f"[{w.start_cycle:,}, {w.end_cycle:,})",
                f"{w.vertex_hit_ratio:.3f}",
                f"{w.edge_hit_ratio:.3f}",
                w.dram_accesses,
                w.steals,
                w.active_slots,
            )
        )
    return _table(
        ("window", "v-hit", "e-hit", "dram", "steals", "slots"), rows
    )


def _jobs_section(jobs: Sequence[Mapping[str, object]]) -> str:
    ordered = sorted(
        jobs,
        key=lambda job: -float(job.get("wall_seconds", 0.0))  # type: ignore[arg-type]
    )
    rows = []
    for job in ordered:
        cycles = job.get("cycles")
        rows.append(
            (
                job.get("name", "?"),
                job.get("backend", "?"),
                f"{float(job.get('wall_seconds', 0.0)):.3f}s",  # type: ignore[arg-type]
                f"{cycles:,}" if isinstance(cycles, int) else "-",
                "hit" if job.get("cached") else "miss",
            )
        )
    return _table(("job", "backend", "wall", "cycles", "cache"), rows)


def render_profile(
    stats: _StatsLike,
    instrument: _InstrumentLike | None = None,
    pressure: Mapping[str, Mapping[str, object]] | None = None,
    jobs: Sequence[Mapping[str, object]] | None = None,
) -> str:
    """Assemble the full text profile from whichever inputs are present."""
    sections = [
        _section("run summary", _summary_section(stats)),
        _section("stall attribution", _stall_section(stats)),
    ]
    if pressure:
        sections.append(_section("cache-set pressure", _pressure_section(pressure)))
    if instrument is not None:
        sections.append(
            _section("steal-wait latency", _steal_section(instrument.steal_latencies))
        )
        sections.append(
            _section("timeline", _timeline_section(instrument.sampler.windows))
        )
    if jobs:
        sections.append(_section("jobs (slowest first)", _jobs_section(jobs)))
    return "\n\n".join(sections)
