"""The observability logger — the sanctioned output channel for library code.

``gramer check`` rule GRM601 bans bare ``print()`` in library code so that
every diagnostic line flows through one configurable sink.  Two channels:

* :func:`get_logger` — namespaced stdlib loggers under the ``gramer`` root.
  The root handler is attached lazily on first use and writes to *stderr*,
  so diagnostics never contaminate machine-readable stdout (tables, JSON).
  The level comes from the ``GRAMER_LOG`` environment variable (``debug``,
  ``info``, ``warning``, ...; default ``info``) — per-job executor lifecycle
  lines sit at ``debug`` so they are opt-in.
* :func:`console` — deliberate user-facing *stdout* output for CLI
  surfaces (reports, tables).  Using it instead of ``print`` marks the
  emission as intentional primary output, which is exactly the
  intentionality GRM601 enforces.

This module is a leaf: it imports nothing from the rest of ``repro``, so
any layer (simulator, runtime, experiments) may log through it.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["console", "get_logger"]

_ROOT_NAME = "gramer"
_ENV_LEVEL = "GRAMER_LOG"


def _configure_root(root: logging.Logger) -> None:
    """Attach the default stderr handler once, level from ``GRAMER_LOG``."""
    # gramer: ignore[GRM201] -- process-startup config: the log level shapes
    # diagnostic verbosity only, never any modeled or cached value.
    requested = os.environ.get(_ENV_LEVEL, "").strip().upper()
    level = getattr(logging, requested, logging.INFO)
    if not isinstance(level, int):
        level = logging.INFO
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``gramer`` root (``gramer.<name>``).

    The first call configures the root handler; subsequent calls are a
    plain ``logging.getLogger`` lookup.
    """
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        _configure_root(root)
    return logging.getLogger(f"{_ROOT_NAME}.{name}") if name else root


def console(message: str) -> None:
    """Write deliberate user-facing output to stdout (flushed).

    The one sanctioned home of ``print`` outside CLI modules — routing
    through it keeps GRM601 meaningful: library code states explicitly
    when a line is primary output rather than a stray debug print.
    """
    print(message, flush=True)
