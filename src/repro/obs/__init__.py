"""Observability subsystem: metrics, event tracing, windowed timelines.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a process-local registry of labeled
  counters/gauges/histograms that ``SimStats``, the memory hierarchy, and
  the artifact cache publish into;
* :mod:`repro.obs.tracer` — structured spans/instants serialized to JSONL
  and Chrome-trace (Perfetto-loadable) formats, with :class:`NullTracer`
  as the zero-overhead disabled path;
* :mod:`repro.obs.timeline` — a windowed sampler that turns end-of-run
  counters into per-window trajectories (hit ratios, stall attribution,
  occupancy phases).

:mod:`repro.obs.hooks` wires the three into the simulator's event loop;
:mod:`repro.obs.report` renders the ``gramer profile`` text report; and
:mod:`repro.obs.log` is the sanctioned logging/console channel enforced
by ``gramer check`` rule GRM601.
"""

from .access import (
    ACCESS_SCHEMA_VERSION,
    AccessEvent,
    AccessSchemaError,
    AccessTrace,
    AccessTraceSet,
    validate_access_event,
)
from .hooks import SimInstrument
from .locality_report import (
    aggregate_reports,
    analyze_trace,
    compare_reports,
    reuse_profile,
    spatial_utilization,
    stack_distances,
    taxonomy,
)
from .log import console, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .report import (
    render_access_table_markdown,
    render_memprofile,
    render_memprofile_compare,
    render_memprofile_markdown,
    render_profile,
)
from .timeline import TimelineSampler, TimelineWindow
from .tracer import (
    CATEGORY_EXECUTOR,
    CATEGORY_MEMORY,
    CATEGORY_PU,
    CATEGORY_STEAL,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    PID_EXECUTOR,
    PID_TIMELINE,
    SIM_PID_BASE,
    TraceEvent,
    TraceSchemaError,
    Tracer,
    read_jsonl,
    validate_event,
)

__all__ = [
    "ACCESS_SCHEMA_VERSION",
    "CATEGORY_EXECUTOR",
    "CATEGORY_MEMORY",
    "CATEGORY_PU",
    "CATEGORY_STEAL",
    "AccessEvent",
    "AccessSchemaError",
    "AccessTrace",
    "AccessTraceSet",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PID_EXECUTOR",
    "PID_TIMELINE",
    "SIM_PID_BASE",
    "SimInstrument",
    "TRACE_SCHEMA_VERSION",
    "TimelineSampler",
    "TimelineWindow",
    "TraceEvent",
    "TraceSchemaError",
    "Tracer",
    "aggregate_reports",
    "analyze_trace",
    "compare_reports",
    "console",
    "get_logger",
    "percentile",
    "read_jsonl",
    "render_access_table_markdown",
    "render_memprofile",
    "render_memprofile_compare",
    "render_memprofile_markdown",
    "render_profile",
    "reuse_profile",
    "spatial_utilization",
    "stack_distances",
    "taxonomy",
    "validate_access_event",
]
