"""Observability subsystem: metrics, event tracing, windowed timelines.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — a process-local registry of labeled
  counters/gauges/histograms that ``SimStats``, the memory hierarchy, and
  the artifact cache publish into;
* :mod:`repro.obs.tracer` — structured spans/instants serialized to JSONL
  and Chrome-trace (Perfetto-loadable) formats, with :class:`NullTracer`
  as the zero-overhead disabled path;
* :mod:`repro.obs.timeline` — a windowed sampler that turns end-of-run
  counters into per-window trajectories (hit ratios, stall attribution,
  occupancy phases).

:mod:`repro.obs.hooks` wires the three into the simulator's event loop;
:mod:`repro.obs.report` renders the ``gramer profile`` text report; and
:mod:`repro.obs.log` is the sanctioned logging/console channel enforced
by ``gramer check`` rule GRM601.
"""

from .hooks import SimInstrument
from .log import console, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from .report import render_profile
from .timeline import TimelineSampler, TimelineWindow
from .tracer import (
    CATEGORY_EXECUTOR,
    CATEGORY_MEMORY,
    CATEGORY_PU,
    CATEGORY_STEAL,
    NullTracer,
    PID_EXECUTOR,
    PID_TIMELINE,
    SIM_PID_BASE,
    TraceEvent,
    Tracer,
    validate_event,
)

__all__ = [
    "CATEGORY_EXECUTOR",
    "CATEGORY_MEMORY",
    "CATEGORY_PU",
    "CATEGORY_STEAL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "PID_EXECUTOR",
    "PID_TIMELINE",
    "SIM_PID_BASE",
    "SimInstrument",
    "TimelineSampler",
    "TimelineWindow",
    "TraceEvent",
    "Tracer",
    "console",
    "get_logger",
    "percentile",
    "render_profile",
    "validate_event",
]
