"""Windowed timeline sampler — trajectories instead of end-of-run totals.

The third pillar of the observability subsystem.  ``SimStats`` counters
only answer "what happened over the whole run"; the questions that
motivate this subsystem — *when* does the low-priority cache degrade,
*which phase* is load-imbalanced — need the same counters sliced into
fixed-width cycle windows.

:class:`TimelineSampler` snapshots a stats object every ``window_cycles``
simulated cycles and differences consecutive snapshots into
:class:`TimelineWindow` records: per-window accesses/hits per side, DRAM
traffic, stall attribution, steals, plus point-in-time PU occupancy.
The simulator drives it from its event loop (``advance`` at every event
timestamp; ``finish`` once at the end) — the sampler decides internally
whether a window boundary was crossed, so the hot loop stays branch-light.

Stats and PU objects are duck-typed through small ``Protocol``\\ s; the
sampler imports nothing from ``repro.accel``, keeping ``obs`` a leaf
package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

__all__ = ["TimelineSampler", "TimelineWindow"]


class _StatsLike(Protocol):
    """Anything exposing scalar counters via ``as_dict`` (SimStats does)."""

    def as_dict(self) -> Mapping[str, object]: ...


class _PULike(Protocol):
    """Anything exposing instantaneous slot occupancy (ProcessingUnit does)."""

    busy_slots: int


@dataclass(frozen=True)
class TimelineWindow:
    """Counter deltas over one ``[start, end)`` cycle window."""

    index: int
    start_cycle: int
    end_cycle: int
    vertex_accesses: int
    vertex_hits: int
    edge_accesses: int
    edge_hits: int
    dram_accesses: int
    compute_cycles: int
    vertex_wait_cycles: int
    edge_wait_cycles: int
    steals: int
    steal_attempts: int
    roots_dispatched: int
    active_slots: int

    @property
    def vertex_hit_ratio(self) -> float:
        """On-chip vertex hit ratio within this window alone."""
        return (
            self.vertex_hits / self.vertex_accesses
            if self.vertex_accesses
            else 0.0
        )

    @property
    def edge_hit_ratio(self) -> float:
        """On-chip edge hit ratio within this window alone."""
        return (
            self.edge_hits / self.edge_accesses if self.edge_accesses else 0.0
        )

    def as_dict(self) -> dict[str, float]:
        """Flat JSON-friendly dump including the derived ratios."""
        return {
            "index": float(self.index),
            "start_cycle": float(self.start_cycle),
            "end_cycle": float(self.end_cycle),
            "vertex_accesses": float(self.vertex_accesses),
            "vertex_hits": float(self.vertex_hits),
            "vertex_hit_ratio": self.vertex_hit_ratio,
            "edge_accesses": float(self.edge_accesses),
            "edge_hits": float(self.edge_hits),
            "edge_hit_ratio": self.edge_hit_ratio,
            "dram_accesses": float(self.dram_accesses),
            "compute_cycles": float(self.compute_cycles),
            "vertex_wait_cycles": float(self.vertex_wait_cycles),
            "edge_wait_cycles": float(self.edge_wait_cycles),
            "steals": float(self.steals),
            "steal_attempts": float(self.steal_attempts),
            "roots_dispatched": float(self.roots_dispatched),
            "active_slots": float(self.active_slots),
        }


def _scalar_snapshot(stats: _StatsLike) -> dict[str, int]:
    """Integer counters of a stats dump (per-PU lists excluded)."""
    return {
        key: value
        for key, value in stats.as_dict().items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


def _active_slots(pus: Sequence[_PULike]) -> int:
    return sum(pu.busy_slots for pu in pus)


class TimelineSampler:
    """Fixed-width cycle-window differencing of a live stats object."""

    def __init__(self, window_cycles: int) -> None:
        if window_cycles < 1:
            raise ValueError(f"window_cycles must be >= 1, got {window_cycles}")
        self.window_cycles = window_cycles
        self.windows: list[TimelineWindow] = []
        self._prev: dict[str, int] = {}
        self._boundary = window_cycles  # next close-at cycle

    def begin(self, stats: _StatsLike) -> None:
        """Take the opening snapshot (call once before the event loop)."""
        self.windows.clear()
        self._prev = _scalar_snapshot(stats)
        self._boundary = self.window_cycles

    def _close_window(
        self,
        start_cycle: int,
        end_cycle: int,
        stats: _StatsLike,
        pus: Sequence[_PULike],
    ) -> TimelineWindow:
        current = _scalar_snapshot(stats)
        delta = {
            key: current.get(key, 0) - self._prev.get(key, 0)
            for key in current
        }
        window = TimelineWindow(
            index=len(self.windows),
            start_cycle=start_cycle,
            end_cycle=end_cycle,
            vertex_accesses=(
                delta.get("vertex_high_hits", 0)
                + delta.get("vertex_low_hits", 0)
                + delta.get("vertex_misses", 0)
            ),
            vertex_hits=(
                delta.get("vertex_high_hits", 0)
                + delta.get("vertex_low_hits", 0)
            ),
            edge_accesses=(
                delta.get("edge_high_hits", 0)
                + delta.get("edge_low_hits", 0)
                + delta.get("edge_misses", 0)
            ),
            edge_hits=(
                delta.get("edge_high_hits", 0) + delta.get("edge_low_hits", 0)
            ),
            dram_accesses=(
                delta.get("vertex_misses", 0) + delta.get("edge_misses", 0)
            ),
            compute_cycles=delta.get("compute_cycles", 0),
            vertex_wait_cycles=delta.get("vertex_wait_cycles", 0),
            edge_wait_cycles=delta.get("edge_wait_cycles", 0),
            steals=delta.get("steals", 0),
            steal_attempts=delta.get("steal_attempts", 0),
            roots_dispatched=delta.get("roots_dispatched", 0),
            active_slots=_active_slots(pus),
        )
        self.windows.append(window)
        self._prev = current
        return window

    def advance(
        self, now: int, stats: _StatsLike, pus: Sequence[_PULike]
    ) -> list[TimelineWindow]:
        """Close every window whose boundary ``now`` has reached or passed.

        Returns the newly closed windows (usually none, sometimes one;
        several when the simulated clock jumps across multiple
        boundaries at once).  Counter deltas attribute to the window in
        which the clock *lands* — boundary alignment at cycle precision
        is not observable from an event-driven loop, and windows stay
        an exact partition of the run either way.
        """
        closed: list[TimelineWindow] = []
        while now >= self._boundary:
            closed.append(
                self._close_window(
                    self._boundary - self.window_cycles,
                    self._boundary,
                    stats,
                    pus,
                )
            )
            self._boundary += self.window_cycles
        return closed

    def finish(
        self, end: int, stats: _StatsLike, pus: Sequence[_PULike]
    ) -> list[TimelineWindow]:
        """Flush boundaries up to ``end`` plus the final partial window."""
        closed = self.advance(end, stats, pus)
        last_end = self.windows[-1].end_cycle if self.windows else 0
        if end > last_end or not self.windows:
            closed.append(
                self._close_window(last_end, end, stats, pus)
            )
        return closed
