"""Structured memory-access event channel — the raw feed of ``memprofile``.

The fourth pillar of the observability subsystem: producers (the reference
simulator's LAMH observers, the CPU baseline's cache stack, the RStream
disk spill path) record one :class:`AccessEvent` per memory transaction
into an :class:`AccessTrace`; the offline analyzer
(:mod:`repro.obs.locality_report`) turns the stream into the per-region
traffic taxonomy, reuse-distance histograms, and spatial-utilization
scores behind ``gramer memprofile``.

Like the tracer, this module is a leaf: it never imports the simulator or
the memory hierarchy.  Emit sites reach it through the typed helpers in
:mod:`repro.obs.hooks` (enforced by ``gramer check`` rule GRM602), every
hook is guarded by ``if ... is not None`` at the call site, and recording
only appends to the trace — an ``access_trace=`` run is bit-identical to
an untraced one (asserted by ``tests/obs/``).

Regions
-------
Every event names one of five data-structure regions:

* ``adjacency`` — CSR edge slots (GRAMER: rank-space addresses, i.e. the
  physical position in the ON1-reordered edge array; baselines: the
  vid-space neighbors array).
* ``on1-rank`` — vertex records (GRAMER: rank space; baselines: the CSR
  offsets array).
* ``embedding`` — intermediate-embedding traffic (RStream's SSD spills).
* ``ancestor-buffer`` — GRAMER's per-slot DFS ancestor records (§V-A).
* ``priority-cache`` — fill inserts into the LAMH low-priority cache.

``level`` records where the request was served: ``high`` (pinned
scratchpad / on-chip buffer), ``low`` (low-priority cache hit), or
``offchip`` (DRAM / post-LLC / disk).  The analyzer's *traffic* channel
selects ``offchip`` events — the stream a memory controller would see.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from .log import get_logger

__all__ = [
    "ACCESS_SCHEMA_VERSION",
    "ACCESS_ENTRY_BYTES",
    "REGIONS",
    "LEVELS",
    "AccessEvent",
    "AccessSchemaError",
    "AccessTrace",
    "AccessTraceSet",
    "validate_access_event",
]

_log = get_logger("obs.access")

#: Version stamped into every serialized trace header.  Readers reject
#: traces from the future and warn (best-effort parse) on older ones.
ACCESS_SCHEMA_VERSION = 1

#: One vertex record / CSR edge slot is 8 bytes across the whole model
#: (matches ``CPUConfig.entry_bytes`` and the accelerator's word size).
ACCESS_ENTRY_BYTES = 8

REGIONS = (
    "adjacency",
    "on1-rank",
    "embedding",
    "ancestor-buffer",
    "priority-cache",
)

LEVELS = ("high", "low", "offchip")

_RWS = ("r", "w")


class AccessSchemaError(ValueError):
    """A serialized access trace is unreadable by this code version."""


@dataclass(frozen=True, slots=True)
class AccessEvent:
    """One memory transaction as seen by an emit site."""

    component: str  # emitting unit, e.g. "lamh.edge", "cpu.llc", "disk"
    region: str  # one of REGIONS
    address: int  # byte address within the region's address space
    size: int  # bytes demanded by the request
    cycle: int  # service time (sim cycles / logical sequence number)
    rw: str  # "r" | "w"
    level: str  # "high" | "low" | "offchip"

    def as_record(self) -> dict[str, object]:
        """Plain-dict form for JSONL serialization."""
        return {
            "component": self.component,
            "region": self.region,
            "address": self.address,
            "size": self.size,
            "cycle": self.cycle,
            "rw": self.rw,
            "level": self.level,
        }


def validate_access_event(record: Mapping[str, object]) -> list[str]:
    """Schema-check one serialized event; return problems (empty = valid)."""
    problems: list[str] = []
    for key, kinds in (
        ("component", (str,)),
        ("region", (str,)),
        ("address", (int,)),
        ("size", (int,)),
        ("cycle", (int,)),
        ("rw", (str,)),
        ("level", (str,)),
    ):
        if key not in record:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(record[key], kinds) or isinstance(
            record[key], bool
        ):
            problems.append(
                f"key {key!r} has type {type(record[key]).__name__}"
            )
    region = record.get("region")
    if isinstance(region, str) and region not in REGIONS:
        problems.append(f"unknown region {region!r}")
    rw = record.get("rw")
    if isinstance(rw, str) and rw not in _RWS:
        problems.append(f"rw must be 'r' or 'w', got {rw!r}")
    level = record.get("level")
    if isinstance(level, str) and level not in LEVELS:
        problems.append(f"unknown level {level!r}")
    for key in ("address", "size"):
        value = record.get(key)
        if isinstance(value, int) and not isinstance(value, bool) and value < 0:
            problems.append(f"negative {key} {value}")
    return problems


class AccessTrace:
    """Append-only buffer of :class:`AccessEvent` for one run.

    ``cycle`` is a mutable clock producers may update as simulated time
    advances; :meth:`record` stamps it on events that do not carry their
    own timestamp.  The trace itself never influences the producer — it
    only accumulates.
    """

    enabled = True

    def __init__(self, meta: Mapping[str, object] | None = None) -> None:
        self.meta: dict[str, object] = dict(meta or {})
        self.events: list[AccessEvent] = []
        self.cycle = 0

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        component: str,
        region: str,
        address: int,
        size: int,
        rw: str,
        level: str,
        cycle: int | None = None,
    ) -> None:
        """Append one event (stamped with the trace clock by default)."""
        self.events.append(
            AccessEvent(
                component=component,
                region=region,
                address=int(address),
                size=int(size),
                cycle=int(self.cycle if cycle is None else cycle),
                rw=rw,
                level=level,
            )
        )

    def regions(self) -> list[str]:
        """Distinct regions present, in REGIONS order."""
        present = {event.region for event in self.events}
        return [region for region in REGIONS if region in present]

    def select(
        self, region: str | None = None, level: str | None = None
    ) -> list[AccessEvent]:
        """Events filtered by region and/or service level, in trace order."""
        return [
            event
            for event in self.events
            if (region is None or event.region == region)
            and (level is None or event.level == level)
        ]

    # -- serialization ------------------------------------------------------

    def header(self) -> dict[str, object]:
        """The JSONL header line (schema version + run metadata)."""
        return {
            "schema_version": ACCESS_SCHEMA_VERSION,
            "kind": "gramer-access-trace",
            "meta": dict(self.meta),
        }

    def write_jsonl(self, path: str | Path) -> Path:
        """Serialize header + one event per line to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(self.header(), separators=(",", ":"))]
        lines.extend(
            json.dumps(event.as_record(), separators=(",", ":"))
            for event in self.events
        )
        target.write_text("\n".join(lines) + "\n")
        return target

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "AccessTrace":
        """Load a serialized trace, enforcing the schema-version contract.

        Traces written by a *newer* schema raise
        :class:`AccessSchemaError` — silently misreading fields would be
        worse than failing.  Traces from an *older* schema (or with no
        header at all, the pre-versioning format) log a warning and parse
        best-effort; events failing validation are dropped with a count.
        """
        source = Path(path)
        lines = [
            line
            for line in source.read_text().splitlines()
            if line.strip()
        ]
        if not lines:
            return cls()
        first = json.loads(lines[0])
        body = lines
        meta: dict[str, object] = {}
        if isinstance(first, dict) and "schema_version" in first:
            version = first["schema_version"]
            if not isinstance(version, int) or isinstance(version, bool):
                raise AccessSchemaError(
                    f"{source}: non-integer schema_version {version!r}"
                )
            if version > ACCESS_SCHEMA_VERSION:
                raise AccessSchemaError(
                    f"{source}: schema_version {version} is newer than "
                    f"supported version {ACCESS_SCHEMA_VERSION}; upgrade "
                    "the reader"
                )
            if version < ACCESS_SCHEMA_VERSION:
                _log.warning(
                    "%s: old access-trace schema_version %d (current %d); "
                    "parsing best-effort",
                    source,
                    version,
                    ACCESS_SCHEMA_VERSION,
                )
            raw_meta = first.get("meta")
            if isinstance(raw_meta, dict):
                meta = raw_meta
            body = lines[1:]
        else:
            _log.warning(
                "%s: no schema header (pre-versioning trace); "
                "parsing best-effort",
                source,
            )
        trace = cls(meta=meta)
        dropped = 0
        for line in body:
            record = json.loads(line)
            if not isinstance(record, dict) or validate_access_event(record):
                dropped += 1
                continue
            trace.record(
                component=record["component"],
                region=record["region"],
                address=record["address"],
                size=record["size"],
                rw=record["rw"],
                level=record["level"],
                cycle=record["cycle"],
            )
        if dropped:
            _log.warning(
                "%s: dropped %d invalid event line(s)", source, dropped
            )
        return trace


class AccessTraceSet:
    """Ordered collection of per-job traces for a multi-spec run.

    ``Executor.run(..., access_traces=...)`` opens one trace per spec;
    callers read them back by label after the run.
    """

    def __init__(self) -> None:
        self.traces: dict[str, AccessTrace] = {}

    def open(
        self, label: str, **meta: object
    ) -> AccessTrace:
        """Create (or replace) the trace registered under ``label``."""
        trace = AccessTrace(meta={"label": label, **meta})
        self.traces[label] = trace
        return trace

    def get(self, label: str) -> AccessTrace | None:
        return self.traces.get(label)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterable[tuple[str, AccessTrace]]:
        return iter(self.traces.items())
