"""Metrics registry — counters, gauges, and histograms with label support.

The first pillar of the observability subsystem: a process-local registry
that :class:`~repro.accel.stats.SimStats`, the memory hierarchy, and the
artifact cache publish into, so one ``gramer profile`` run (or a test) can
read every subsystem's numbers through a single interface.

Design points:

* **Labels.**  Every sample carries a label set (``side="vertex"``,
  ``level="high"``); a metric is a family of series keyed by the sorted
  label tuple, mirroring the Prometheus data model without the dependency.
* **Get-or-create.**  ``registry.counter(name)`` returns the existing
  metric when the name is already registered (and raises if it was
  registered as a different kind), so independent publishers can share
  families without coordination.
* **Determinism.**  :meth:`MetricsRegistry.render_text` and
  :meth:`MetricsRegistry.as_dict` emit in sorted order — two identical
  runs render byte-identical metric dumps.
"""

from __future__ import annotations

from math import ceil
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelSet",
    "Metric",
    "MetricsRegistry",
    "percentile",
]

LabelSet = tuple[tuple[str, str], ...]


def _label_set(labels: Mapping[str, object]) -> LabelSet:
    """Canonical (sorted) label tuple for one sample."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus exposition format: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    return (
        "{"
        + ",".join(
            f'{key}="{_escape_label_value(value)}"' for key, value in labels
        )
        + "}"
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class Metric:
    """Base: a named family of labeled series."""

    kind = "metric"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help_text

    def series(self) -> dict[LabelSet, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (events, accesses, cycles)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelSet, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_set(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0.0 when never incremented)."""
        return self._values.get(_label_set(labels), 0.0)

    def total(self) -> float:
        """Sum over every series of the family."""
        return sum(self._values.values())

    def series(self) -> dict[LabelSet, object]:
        return dict(sorted(self._values.items()))


class Gauge(Metric):
    """Point-in-time value (ratios, occupancy)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelSet, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Record the current value of one series."""
        self._values[_label_set(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_set(labels), 0.0)

    def series(self) -> dict[LabelSet, object]:
        return dict(sorted(self._values.items()))


class Histogram(Metric):
    """Distribution of observed values (latencies, job durations).

    Raw observations are retained per series — at profiling scale (one
    observation per job or steal, not per cycle) exact percentiles beat
    pre-bucketing.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelSet, list[float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation in the series selected by ``labels``."""
        self._values.setdefault(_label_set(labels), []).append(float(value))

    def count(self, **labels: object) -> int:
        return len(self._values.get(_label_set(labels), []))

    def summary(self, **labels: object) -> dict[str, float]:
        """count/sum/min/max/p50/p90/p99 of one series (zeros when empty)."""
        values = self._values.get(_label_set(labels), [])
        if not values:
            return {key: 0.0 for key in
                    ("count", "sum", "min", "max", "p50", "p90", "p99")}
        return {
            "count": float(len(values)),
            "sum": sum(values),
            "min": min(values),
            "max": max(values),
            "p50": percentile(values, 50),
            "p90": percentile(values, 90),
            "p99": percentile(values, 99),
        }

    def series(self) -> dict[LabelSet, object]:
        return {
            key: self.summary(**dict(key))
            for key in sorted(self._values)
        }


class MetricsRegistry:
    """Named metric families, get-or-create, rendered deterministically."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, help_text: str, cls: type[Metric]
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(name, help_text, Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(name, help_text, Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        metric = self._get_or_create(name, help_text, Histogram)
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Metric:
        """Resolve one registered family by name (KeyError when absent)."""
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Nested plain-dict dump (JSON-friendly, deterministic order)."""
        return {
            metric.name: {
                "kind": metric.kind,
                "help": metric.help,
                "series": {
                    _render_labels(key) or "{}": value
                    for key, value in metric.series().items()
                },
            }
            for metric in self
        }

    def render_text(self) -> str:
        """Prometheus-style text exposition (sorted, byte-deterministic)."""
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in metric.series().items():
                rendered = _render_labels(key)
                if isinstance(value, dict):
                    for stat, stat_value in value.items():
                        lines.append(
                            f"{metric.name}_{stat}{rendered} {stat_value:g}"
                        )
                else:
                    lines.append(f"{metric.name}{rendered} {value:g}")
        return "\n".join(lines)
