"""SimInstrument — the simulator-facing facade over tracer + timeline.

:class:`~repro.accel.sim.GramerSimulator` accepts an optional instrument
and calls its hooks from the event loop (root dispatch, extension steps,
DRAM fetches, steal waits) — each hook is purely observational: it reads
simulator state, never writes it, so a traced run produces bit-identical
``SimStats`` to an untraced one (asserted by tests).

Time base: the hooks receive simulated *cycles* and forward them to the
tracer as microseconds one-for-one (see ``repro.obs.tracer``).  Track
layout: PU ``p`` renders as process ``SIM_PID_BASE + p`` with one thread
per slot; windowed counters render as process ``PID_TIMELINE``.

The instrument also aggregates what per-event traces cannot show
directly: steal-wait latencies (first failed attempt → successful steal,
per slot) and the closed timeline windows, both of which feed the
``gramer profile`` report and the optional metrics registry.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from .metrics import MetricsRegistry
from .timeline import TimelineSampler, TimelineWindow
from .tracer import (
    CATEGORY_MEMORY,
    CATEGORY_PU,
    CATEGORY_STEAL,
    PID_TIMELINE,
    SIM_PID_BASE,
    Tracer,
)

__all__ = ["SimInstrument"]

_KIND_NAMES = ("vertex", "edge")


class _StatsLike(Protocol):
    cycles: int

    def as_dict(self) -> dict[str, object]: ...


class _PULike(Protocol):
    busy_slots: int


class SimInstrument:
    """Observational hooks the simulator calls when tracing is enabled."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        window_cycles: int = 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry
        self.sampler = TimelineSampler(window_cycles)
        self.steal_latencies: list[int] = []
        # (pu, slot) -> (first failed attempt cycle, attempt count) for the
        # steal-wait spell currently in progress.
        self._steal_wait: dict[tuple[int, int], tuple[int, int]] = {}
        # (pu, slot) -> (start cycle, stack depth) of the step in flight.
        self._step: dict[tuple[int, int], tuple[int, int]] = {}

    # -- run lifecycle ------------------------------------------------------

    def begin_run(self, num_pus: int, stats: _StatsLike) -> None:
        """Name the viewer tracks and take the opening timeline snapshot."""
        tracer = self.tracer
        tracer.metadata(PID_TIMELINE, 0, "process_name", "timeline")
        for p in range(num_pus):
            tracer.metadata(SIM_PID_BASE + p, 0, "process_name", f"PU {p}")
        self.sampler.begin(stats)

    def advance(
        self, now: int, stats: _StatsLike, pus: Sequence[_PULike]
    ) -> None:
        """Drive the timeline sampler from the event loop's clock."""
        for window in self.sampler.advance(now, stats, pus):
            self._emit_window(window)

    def finish_run(self, stats: _StatsLike, pus: Sequence[_PULike]) -> None:
        """Flush the final timeline window and publish end-of-run metrics."""
        for window in self.sampler.finish(stats.cycles, stats, pus):
            self._emit_window(window)
        registry = self.registry
        if registry is not None:
            publish = getattr(stats, "publish", None)
            if publish is not None:
                publish(registry)
            latency = registry.histogram(
                "sim_steal_latency_cycles",
                "cycles an idle slot waited from first failed steal "
                "attempt to a successful steal",
            )
            for value in self.steal_latencies:
                latency.observe(value)

    def _emit_window(self, window: TimelineWindow) -> None:
        end = float(window.end_cycle)
        tracer = self.tracer
        tracer.counter(
            "hit_ratio",
            CATEGORY_MEMORY,
            end,
            PID_TIMELINE,
            {
                "vertex": round(window.vertex_hit_ratio, 4),
                "edge": round(window.edge_hit_ratio, 4),
            },
        )
        tracer.counter(
            "dram_accesses",
            CATEGORY_MEMORY,
            end,
            PID_TIMELINE,
            {"dram": float(window.dram_accesses)},
        )
        tracer.counter(
            "active_slots",
            CATEGORY_PU,
            end,
            PID_TIMELINE,
            {"busy": float(window.active_slots)},
        )

    # -- per-event hooks ----------------------------------------------------

    def root_dispatched(self, p: int, s: int, root: int, ts: int) -> None:
        """An initial embedding arrived from the Arbitrator."""
        self.tracer.instant(
            "root",
            CATEGORY_PU,
            float(ts),
            SIM_PID_BASE + p,
            s,
            vertex=root,
        )

    def step_started(self, p: int, s: int, ts: int, depth: int) -> None:
        """One extension step (propose/check or traceback) began."""
        self._step[(p, s)] = (ts, depth)

    def step_finished(self, p: int, s: int, ts: int) -> None:
        """The step's last recorded operation retired."""
        started = self._step.pop((p, s), None)
        if started is None:
            return
        start, depth = started
        self.tracer.complete(
            "extend",
            CATEGORY_PU,
            float(start),
            float(ts - start),
            SIM_PID_BASE + p,
            s,
            depth=depth,
        )

    def dram_fetch(
        self,
        p: int,
        s: int,
        kind: int,
        address: int,
        ts: int,
        dur: int,
        channel: int,
    ) -> None:
        """A request missed on-chip and went to DRAM."""
        self.tracer.complete(
            "dram",
            CATEGORY_MEMORY,
            float(ts),
            float(dur),
            SIM_PID_BASE + p,
            s,
            side=_KIND_NAMES[kind],
            address=address,
            channel=channel,
        )

    def steal_attempted(self, p: int, s: int, ts: int) -> None:
        """An idle slot probed for work (may repeat every retry period)."""
        key = (p, s)
        spell = self._steal_wait.get(key)
        if spell is None:
            self._steal_wait[key] = (ts, 1)
            self.tracer.instant(
                "steal_wait_start",
                CATEGORY_STEAL,
                float(ts),
                SIM_PID_BASE + p,
                s,
            )
        else:
            self._steal_wait[key] = (spell[0], spell[1] + 1)

    def steal_succeeded(self, p: int, s: int, ts: int) -> None:
        """A probe found splittable work; close the wait spell as a span."""
        key = (p, s)
        first, attempts = self._steal_wait.pop(key, (ts, 1))
        self.steal_latencies.append(ts - first)
        self.tracer.complete(
            "steal_wait",
            CATEGORY_STEAL,
            float(first),
            float(ts - first),
            SIM_PID_BASE + p,
            s,
            attempts=attempts,
        )
