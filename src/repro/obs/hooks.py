"""SimInstrument — the simulator-facing facade over tracer + timeline.

:class:`~repro.accel.sim.GramerSimulator` accepts an optional instrument
and calls its hooks from the event loop (root dispatch, extension steps,
DRAM fetches, steal waits) — each hook is purely observational: it reads
simulator state, never writes it, so a traced run produces bit-identical
``SimStats`` to an untraced one (asserted by tests).

Time base: the hooks receive simulated *cycles* and forward them to the
tracer as microseconds one-for-one (see ``repro.obs.tracer``).  Track
layout: PU ``p`` renders as process ``SIM_PID_BASE + p`` with one thread
per slot; windowed counters render as process ``PID_TIMELINE``.

The instrument also aggregates what per-event traces cannot show
directly: steal-wait latencies (first failed attempt → successful steal,
per slot) and the closed timeline windows, both of which feed the
``gramer profile`` report and the optional metrics registry.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from .access import ACCESS_ENTRY_BYTES, AccessTrace
from .metrics import MetricsRegistry
from .timeline import TimelineSampler, TimelineWindow
from .tracer import (
    CATEGORY_EXECUTOR,
    CATEGORY_MEMORY,
    CATEGORY_PU,
    CATEGORY_STEAL,
    PID_EXECUTOR,
    PID_TIMELINE,
    SIM_PID_BASE,
    Tracer,
)

__all__ = [
    "SimInstrument",
    "attach_access_observers",
    "attach_cpu_observer",
    "ancestor_push_emitter",
    "disk_spill_emitter",
    "emit_job_event",
    "emit_job_retry",
]

_KIND_NAMES = ("vertex", "edge")


class _StatsLike(Protocol):
    cycles: int

    def as_dict(self) -> dict[str, object]: ...


class _PULike(Protocol):
    busy_slots: int


class SimInstrument:
    """Observational hooks the simulator calls when tracing is enabled."""

    def __init__(
        self,
        tracer: Tracer | None = None,
        window_cycles: int = 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry
        self.sampler = TimelineSampler(window_cycles)
        self.steal_latencies: list[int] = []
        # (pu, slot) -> (first failed attempt cycle, attempt count) for the
        # steal-wait spell currently in progress.
        self._steal_wait: dict[tuple[int, int], tuple[int, int]] = {}
        # (pu, slot) -> (start cycle, stack depth) of the step in flight.
        self._step: dict[tuple[int, int], tuple[int, int]] = {}

    # -- run lifecycle ------------------------------------------------------

    def begin_run(self, num_pus: int, stats: _StatsLike) -> None:
        """Name the viewer tracks and take the opening timeline snapshot."""
        tracer = self.tracer
        tracer.metadata(PID_TIMELINE, 0, "process_name", "timeline")
        for p in range(num_pus):
            tracer.metadata(SIM_PID_BASE + p, 0, "process_name", f"PU {p}")
        self.sampler.begin(stats)

    def advance(
        self, now: int, stats: _StatsLike, pus: Sequence[_PULike]
    ) -> None:
        """Drive the timeline sampler from the event loop's clock."""
        for window in self.sampler.advance(now, stats, pus):
            self._emit_window(window)

    def finish_run(self, stats: _StatsLike, pus: Sequence[_PULike]) -> None:
        """Flush the final timeline window and publish end-of-run metrics."""
        for window in self.sampler.finish(stats.cycles, stats, pus):
            self._emit_window(window)
        registry = self.registry
        if registry is not None:
            publish = getattr(stats, "publish", None)
            if publish is not None:
                publish(registry)
            latency = registry.histogram(
                "sim_steal_latency_cycles",
                "cycles an idle slot waited from first failed steal "
                "attempt to a successful steal",
            )
            for value in self.steal_latencies:
                latency.observe(value)

    def _emit_window(self, window: TimelineWindow) -> None:
        end = float(window.end_cycle)
        tracer = self.tracer
        tracer.counter(
            "hit_ratio",
            CATEGORY_MEMORY,
            end,
            PID_TIMELINE,
            {
                "vertex": round(window.vertex_hit_ratio, 4),
                "edge": round(window.edge_hit_ratio, 4),
            },
        )
        tracer.counter(
            "dram_accesses",
            CATEGORY_MEMORY,
            end,
            PID_TIMELINE,
            {"dram": float(window.dram_accesses)},
        )
        tracer.counter(
            "active_slots",
            CATEGORY_PU,
            end,
            PID_TIMELINE,
            {"busy": float(window.active_slots)},
        )

    # -- per-event hooks ----------------------------------------------------

    def root_dispatched(self, p: int, s: int, root: int, ts: int) -> None:
        """An initial embedding arrived from the Arbitrator."""
        self.tracer.instant(
            "root",
            CATEGORY_PU,
            float(ts),
            SIM_PID_BASE + p,
            s,
            vertex=root,
        )

    def step_started(self, p: int, s: int, ts: int, depth: int) -> None:
        """One extension step (propose/check or traceback) began."""
        self._step[(p, s)] = (ts, depth)

    def step_finished(self, p: int, s: int, ts: int) -> None:
        """The step's last recorded operation retired."""
        started = self._step.pop((p, s), None)
        if started is None:
            return
        start, depth = started
        self.tracer.complete(
            "extend",
            CATEGORY_PU,
            float(start),
            float(ts - start),
            SIM_PID_BASE + p,
            s,
            depth=depth,
        )

    def dram_fetch(
        self,
        p: int,
        s: int,
        kind: int,
        address: int,
        ts: int,
        dur: int,
        channel: int,
    ) -> None:
        """A request missed on-chip and went to DRAM."""
        self.tracer.complete(
            "dram",
            CATEGORY_MEMORY,
            float(ts),
            float(dur),
            SIM_PID_BASE + p,
            s,
            side=_KIND_NAMES[kind],
            address=address,
            channel=channel,
        )

    def steal_attempted(self, p: int, s: int, ts: int) -> None:
        """An idle slot probed for work (may repeat every retry period)."""
        key = (p, s)
        spell = self._steal_wait.get(key)
        if spell is None:
            self._steal_wait[key] = (ts, 1)
            self.tracer.instant(
                "steal_wait_start",
                CATEGORY_STEAL,
                float(ts),
                SIM_PID_BASE + p,
                s,
            )
        else:
            self._steal_wait[key] = (spell[0], spell[1] + 1)

    def steal_succeeded(self, p: int, s: int, ts: int) -> None:
        """A probe found splittable work; close the wait spell as a span."""
        key = (p, s)
        first, attempts = self._steal_wait.pop(key, (ts, 1))
        self.steal_latencies.append(ts - first)
        self.tracer.complete(
            "steal_wait",
            CATEGORY_STEAL,
            float(first),
            float(ts - first),
            SIM_PID_BASE + p,
            s,
            attempts=attempts,
        )


# -- typed access-event emit helpers ----------------------------------------
#
# All memory-access events flow through the helpers below (gramer check
# rule GRM602): producers attach a closure built here instead of writing
# ad-hoc dicts, so the AccessEvent schema has exactly one author.

_SIDE_REGION = {"vertex": "on1-rank", "edge": "adjacency"}
_LEVEL_NAMES = {"high": "high", "low_hit": "low", "miss": "offchip"}


class _SideLike(Protocol):
    name: str
    observer: "Callable[[int, int, object], None] | None"
    low_cache: object


class _HierarchyLike(Protocol):
    vertex_side: _SideLike
    edge_side: _SideLike


def _side_observer(
    side_name: str, trace: AccessTrace, entry_bytes: int
) -> "Callable[[int, int, object], None]":
    region = _SIDE_REGION.get(side_name, side_name)
    component = f"lamh.{side_name}"

    def observe(address: int, rank: int, level: object) -> None:
        # Rank space: after ON1 reordering the rank *is* the physical
        # address, so off-chip fills land at rank * entry_bytes.
        trace.record(
            component=component,
            region=region,
            address=rank * entry_bytes,
            size=entry_bytes,
            rw="r",
            level=_LEVEL_NAMES[getattr(level, "value", str(level))],
        )

    return observe


def _fill_observer(
    side_name: str, trace: AccessTrace, line_entries: int, entry_bytes: int
) -> "Callable[[int, int], None]":
    component = f"priority_cache.{side_name}"
    line_bytes = max(1, line_entries) * entry_bytes

    def observe(tag: int, rank: int) -> None:
        trace.record(
            component=component,
            region="priority-cache",
            address=tag * line_bytes,
            size=line_bytes,
            rw="w",
            level="low",
        )

    return observe


def attach_access_observers(
    hierarchy: _HierarchyLike,
    trace: AccessTrace,
    entry_bytes: int = ACCESS_ENTRY_BYTES,
) -> None:
    """Route LAMH service traffic + low-cache fills into ``trace``.

    Installs the per-side observers on a freshly built hierarchy; the
    simulator updates ``trace.cycle`` as its clock advances, so events
    carry service-time timestamps.  Observers only read the arguments the
    hierarchy already computes — zero perturbation.
    """
    for side in (hierarchy.vertex_side, hierarchy.edge_side):
        side.observer = _side_observer(side.name, trace, entry_bytes)
        cache = side.low_cache
        cache.fill_observer = _fill_observer(
            side.name, trace, getattr(cache, "line_size", 1), entry_bytes
        )


def ancestor_push_emitter(
    trace: AccessTrace,
    depth_capacity: int,
    entry_bytes: int = ACCESS_ENTRY_BYTES,
) -> "Callable[[int, int, int], None]":
    """Emitter for GRAMER ancestor-buffer pushes (one record per frame)."""

    def emit(slot_id: int, depth: int, cycle: int) -> None:
        trace.record(
            component="pu.scheduler",
            region="ancestor-buffer",
            address=(slot_id * depth_capacity + depth) * entry_bytes,
            size=entry_bytes,
            rw="w",
            level="high",
            cycle=cycle,
        )

    return emit


class _CPUMemoryLike(Protocol):
    observer: "Callable[[int, bool, bool], None] | None"


def attach_cpu_observer(
    memory: _CPUMemoryLike,
    trace: AccessTrace,
    entry_bytes: int = ACCESS_ENTRY_BYTES,
) -> None:
    """Route a CPU baseline's post-L2 miss stream into ``trace``.

    The baseline stall model charges the full L2+L3 (and possibly DRAM)
    latency exactly at this boundary, so it is the CPU-side equivalent of
    the LAMH miss channel.  Addresses stay in the model's vid-space
    layout (CSR offsets array, then neighbors array).
    """
    counter = {"n": 0}

    def observe(byte_address: int, is_vertex: bool, dram: bool) -> None:
        counter["n"] += 1
        trace.record(
            component="cpu.llc" if not dram else "cpu.mem",
            region="on1-rank" if is_vertex else "adjacency",
            address=byte_address,
            size=entry_bytes,
            rw="r",
            level="offchip",
            cycle=counter["n"],
        )

    memory.observer = observe


def disk_spill_emitter(trace: AccessTrace) -> "Callable[[int, str], None]":
    """Emitter for RStream's embedding-region SSD traffic.

    Spills append sequentially; a byte cursor per direction models the
    stream layout (written once, read back once).
    """
    state = {"cursor": 0, "n": 0}

    def emit(nbytes: int, rw: str) -> None:
        if nbytes <= 0:
            return
        state["n"] += 1
        trace.record(
            component="disk",
            region="embedding",
            address=state["cursor"],
            size=nbytes,
            rw=rw,
            level="offchip",
            cycle=state["n"],
        )
        if rw == "w":
            state["cursor"] += nbytes

    return emit


# -- typed executor trace-event helpers -------------------------------------


def emit_job_event(
    tracer: Tracer,
    label: str,
    now_us: float,
    wall_seconds: float,
    cached: bool,
    **args: object,
) -> None:
    """One job's lifecycle event: an instant if cached, else a span.

    ``cached`` is stamped into the event args, so callers must not pass
    it again through ``**args``.
    """
    if cached:
        tracer.instant(
            f"job {label}",
            CATEGORY_EXECUTOR,
            now_us,
            PID_EXECUTOR,
            0,
            cached=True,
            **args,
        )
    else:
        dur_us = wall_seconds * 1e6
        tracer.complete(
            f"job {label}",
            CATEGORY_EXECUTOR,
            max(now_us - dur_us, 0.0),
            dur_us,
            PID_EXECUTOR,
            0,
            cached=False,
            **args,
        )


def emit_job_retry(
    tracer: Tracer, label: str, now_us: float, attempt: int, error: str
) -> None:
    """An executor-level retry of one job (transient failure)."""
    tracer.instant(
        f"retry {label}",
        CATEGORY_EXECUTOR,
        now_us,
        PID_EXECUTOR,
        0,
        attempt=attempt,
        error=error,
    )
